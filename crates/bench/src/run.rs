//! Running one (matrix, kernel, variant, prefetcher-config) experiment on
//! the simulator and extracting the paper's metrics.
//!
//! All entry points return `Result<_, AsapError>` — a malformed matrix or
//! a kernel that fails to bind is reported, never a panic. The directory
//! sweep ([`sweep_spmv_dir`]) goes one step further: a failure on one
//! matrix is recorded in the [`SweepReport::skipped`] list and the sweep
//! continues with the rest of the collection.

use asap_core::{compile_cached, CompiledKernel, ExecEngine, PrefetchStrategy};
use asap_ir::{execute, interpret, AsapError, Budget, V};
use asap_matrices::{read_matrix_market, Triplets};
use asap_obs::{Json, ObjWriter};
use asap_sim::{run_parallel, GracemontConfig, Machine, PrefetcherConfig};
use asap_sparsifier::{bind, KernelArg, KernelSpec};
use asap_tensor::{DenseTensor, Format, SparseTensor, ValueKind};
use std::path::Path;

/// Which implementation variant to run (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    Baseline,
    Asap { distance: usize },
    AinsworthJones { distance: usize },
}

impl Variant {
    pub fn strategy(&self) -> PrefetchStrategy {
        match *self {
            Variant::Baseline => PrefetchStrategy::none(),
            Variant::Asap { distance } => PrefetchStrategy::asap(distance),
            Variant::AinsworthJones { distance } => PrefetchStrategy::aj(distance),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::Asap { .. } => "asap",
            Variant::AinsworthJones { .. } => "aj",
        }
    }
}

/// One experiment's outcome, serializable for EXPERIMENTS.md tooling.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub matrix: String,
    pub group: String,
    pub unstructured: bool,
    pub kernel: String,
    pub variant: String,
    pub hw_config: String,
    pub threads: usize,
    pub nnz: usize,
    pub cycles: u64,
    pub instructions: u64,
    /// nnz processed per millisecond at the configured frequency — the
    /// paper's throughput metric.
    pub throughput: f64,
    /// L2 MPKI of this run.
    pub l2_mpki: f64,
    pub sw_pf_issued: u64,
    pub sw_pf_dropped: u64,
    pub hw_pf_issued: u64,
    pub dram_bytes: u64,
    pub stall_cycles: u64,
    /// Compile warnings (graceful-degradation fallbacks) hit while
    /// building this run's kernel(s). Empty on a clean compile.
    pub warnings: Vec<String>,
}

impl ExperimentResult {
    /// JSON object via the workspace's shared writer
    /// (`asap-obs::json`) — no external serialization crate.
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.str("matrix", &self.matrix)
            .str("group", &self.group)
            .bool("unstructured", self.unstructured)
            .str("kernel", &self.kernel)
            .str("variant", &self.variant)
            .str("hw_config", &self.hw_config)
            .usize("threads", self.threads)
            .usize("nnz", self.nnz)
            .u64("cycles", self.cycles)
            .u64("instructions", self.instructions)
            .f64("throughput", self.throughput)
            .f64("l2_mpki", self.l2_mpki)
            .u64("sw_pf_issued", self.sw_pf_issued)
            .u64("sw_pf_dropped", self.sw_pf_dropped)
            .u64("hw_pf_issued", self.hw_pf_issued)
            .u64("dram_bytes", self.dram_bytes)
            .u64("stall_cycles", self.stall_cycles)
            .str_array("warnings", &self.warnings);
        w.finish()
    }

    /// Parse one object written by [`to_json`] — the checkpoint journal's
    /// resume path, on the shared `asap-obs` parser. Accepts fields in
    /// any order, rejects unknown ones, and reports malformed input as
    /// an error message instead of panicking, so a corrupt or truncated
    /// journal line simply re-runs its cell. Numbers round-trip exactly:
    /// the parser keeps the raw token and each field re-parses it into
    /// its concrete type (`u64` never detours through `f64`; floats
    /// reread the shortest representation `to_json` printed).
    pub fn from_json(s: &str) -> Result<ExperimentResult, String> {
        let v = asap_obs::parse_json(s).map_err(|e| e.to_string())?;
        let Json::Obj(fields) = &v else {
            return Err("expected a JSON object".into());
        };
        fn want_str(v: &Json, field: &str) -> Result<String, String> {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field {field}: expected a string"))
        }
        fn want_num<N: std::str::FromStr>(v: &Json, field: &str) -> Result<N, String> {
            match v {
                Json::Num(raw) => raw
                    .parse()
                    .map_err(|_| format!("field {field}: bad number {raw:?}")),
                _ => Err(format!("field {field}: expected a number")),
            }
        }
        let mut r = ExperimentResult {
            matrix: String::new(),
            group: String::new(),
            unstructured: false,
            kernel: String::new(),
            variant: String::new(),
            hw_config: String::new(),
            threads: 0,
            nnz: 0,
            cycles: 0,
            instructions: 0,
            throughput: 0.0,
            l2_mpki: 0.0,
            sw_pf_issued: 0,
            sw_pf_dropped: 0,
            hw_pf_issued: 0,
            dram_bytes: 0,
            stall_cycles: 0,
            warnings: Vec::new(),
        };
        for (field, val) in fields {
            match field.as_str() {
                "matrix" => r.matrix = want_str(val, field)?,
                "group" => r.group = want_str(val, field)?,
                "kernel" => r.kernel = want_str(val, field)?,
                "variant" => r.variant = want_str(val, field)?,
                "hw_config" => r.hw_config = want_str(val, field)?,
                "unstructured" => {
                    r.unstructured = val
                        .as_bool()
                        .ok_or_else(|| format!("field {field}: expected a bool"))?
                }
                "threads" => r.threads = want_num(val, field)?,
                "nnz" => r.nnz = want_num(val, field)?,
                "cycles" => r.cycles = want_num(val, field)?,
                "instructions" => r.instructions = want_num(val, field)?,
                "throughput" => r.throughput = want_num(val, field)?,
                "l2_mpki" => r.l2_mpki = want_num(val, field)?,
                "sw_pf_issued" => r.sw_pf_issued = want_num(val, field)?,
                "sw_pf_dropped" => r.sw_pf_dropped = want_num(val, field)?,
                "hw_pf_issued" => r.hw_pf_issued = want_num(val, field)?,
                "dram_bytes" => r.dram_bytes = want_num(val, field)?,
                "stall_cycles" => r.stall_cycles = want_num(val, field)?,
                "warnings" => {
                    let arr = val
                        .as_array()
                        .ok_or_else(|| format!("field {field}: expected an array"))?;
                    r.warnings = arr
                        .iter()
                        .map(|w| want_str(w, field))
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(r)
    }
}

/// JSON array of results, one object per line.
pub fn results_to_json(results: &[ExperimentResult]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

#[allow(clippy::too_many_arguments)]
fn result_from(
    name: &str,
    group: &str,
    unstructured: bool,
    kernel: &str,
    variant: Variant,
    hw_name: &str,
    threads: usize,
    nnz: usize,
    cfg: &GracemontConfig,
    agg: asap_sim::Counters,
    dram_bytes: u64,
    warnings: Vec<String>,
) -> ExperimentResult {
    let ms = cfg.cycles_to_seconds(agg.cycles) * 1e3;
    ExperimentResult {
        matrix: name.to_string(),
        group: group.to_string(),
        unstructured,
        kernel: kernel.to_string(),
        variant: variant.label().to_string(),
        hw_config: hw_name.to_string(),
        threads,
        nnz,
        cycles: agg.cycles,
        instructions: agg.instructions,
        throughput: nnz as f64 / ms,
        l2_mpki: agg.l2_mpki(),
        sw_pf_issued: agg.sw_pf_issued,
        sw_pf_dropped: agg.sw_pf_dropped,
        hw_pf_issued: agg.hw_pf_issued,
        dram_bytes,
        stall_cycles: agg.stall_cycles,
        warnings,
    }
}

/// Deterministic dense vector values.
fn x_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.25 + (i % 31) as f64 * 0.125).collect()
}

fn compile_spmv(t: &SparseTensor, variant: Variant) -> Result<CompiledKernel, AsapError> {
    let spec = KernelSpec::spmv(ValueKind::F64);
    compile_cached(&spec, t.format(), t.index_width(), &variant.strategy())
}

fn warning_strings(ck: &CompiledKernel) -> Vec<String> {
    ck.warnings.iter().map(|w| w.to_string()).collect()
}

/// Single-threaded SpMV of `tri` under the given variant and hardware
/// prefetcher configuration. The result is verified against the dense
/// reference.
#[allow(clippy::too_many_arguments)]
pub fn run_spmv(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
) -> Result<ExperimentResult, AsapError> {
    let sparse = SparseTensor::try_from_coo(&tri.try_to_coo_f64()?, Format::csr())?;
    let ck = compile_spmv(&sparse, variant)?;
    let x = x_vector(tri.ncols);
    let mut machine = Machine::new(cfg, pf);
    let y = asap_core::run_spmv_f64_with(&ck, &sparse, &x, &mut machine)?;
    verify_close(&y, &tri.dense_spmv(&x), name)?;
    let dram = machine.dram_bytes_total();
    Ok(result_from(
        name,
        group,
        unstructured,
        "spmv",
        variant,
        hw_name,
        1,
        sparse.nnz(),
        &cfg,
        machine.counters(),
        dram,
        warning_strings(&ck),
    ))
}

/// [`run_spmv`] under a resource [`Budget`]: fuel exhaustion, a missed
/// deadline, or an allocation over the byte ceiling surfaces as a typed
/// `AsapError::BudgetExceeded` — the run terminates at the next loop
/// back-edge instead of running (or hanging) to completion.
#[allow(clippy::too_many_arguments)]
pub fn run_spmv_budgeted(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
    budget: &Budget,
) -> Result<ExperimentResult, AsapError> {
    let sparse = SparseTensor::try_from_coo(&tri.try_to_coo_f64()?, Format::csr())?;
    let ck = compile_spmv(&sparse, variant)?;
    let x = x_vector(tri.ncols);
    let mut machine = Machine::new(cfg, pf);
    let y =
        asap_core::run_spmv_f64_budgeted(&ck, &sparse, &x, &mut machine, ExecEngine::Auto, budget)?;
    verify_close(&y, &tri.dense_spmv(&x), name)?;
    let dram = machine.dram_bytes_total();
    Ok(result_from(
        name,
        group,
        unstructured,
        "spmv",
        variant,
        hw_name,
        1,
        sparse.nnz(),
        &cfg,
        machine.counters(),
        dram,
        warning_strings(&ck),
    ))
}

/// Single-threaded SpMM (`A = B·C`, `n_cols` dense columns).
#[allow(clippy::too_many_arguments)]
pub fn run_spmm(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    n_cols: usize,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
) -> Result<ExperimentResult, AsapError> {
    let sparse = SparseTensor::try_from_coo(&tri.try_to_coo_f64()?, Format::csr())?;
    let spec = KernelSpec::spmm(ValueKind::F64);
    let ck = compile_cached(
        &spec,
        sparse.format(),
        sparse.index_width(),
        &variant.strategy(),
    )?;
    let c = DenseTensor::from_f64(
        vec![tri.ncols, n_cols],
        (0..tri.ncols * n_cols)
            .map(|i| 0.5 + (i % 17) as f64 * 0.0625)
            .collect(),
    );
    let mut machine = Machine::new(cfg, pf);
    let a = asap_core::run_spmm_f64_with(&ck, &sparse, &c, &mut machine)?;
    // Spot-verify one column against the SpMV reference.
    let col0: Vec<f64> = (0..tri.ncols).map(|j| c.as_f64()[j * n_cols]).collect();
    let a0: Vec<f64> = (0..tri.nrows).map(|i| a.as_f64()[i * n_cols]).collect();
    verify_close(&a0, &tri.dense_spmv(&col0), name)?;
    let dram = machine.dram_bytes_total();
    Ok(result_from(
        name,
        group,
        unstructured,
        "spmm",
        variant,
        hw_name,
        1,
        sparse.nnz(),
        &cfg,
        machine.counters(),
        dram,
        warning_strings(&ck),
    ))
}

/// [`run_spmm`] under a resource [`Budget`] (see [`run_spmv_budgeted`]).
#[allow(clippy::too_many_arguments)]
pub fn run_spmm_budgeted(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    n_cols: usize,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
    budget: &Budget,
) -> Result<ExperimentResult, AsapError> {
    let sparse = SparseTensor::try_from_coo(&tri.try_to_coo_f64()?, Format::csr())?;
    let spec = KernelSpec::spmm(ValueKind::F64);
    let ck = compile_cached(
        &spec,
        sparse.format(),
        sparse.index_width(),
        &variant.strategy(),
    )?;
    let c = DenseTensor::from_f64(
        vec![tri.ncols, n_cols],
        (0..tri.ncols * n_cols)
            .map(|i| 0.5 + (i % 17) as f64 * 0.0625)
            .collect(),
    );
    let mut machine = Machine::new(cfg, pf);
    let a = asap_core::run_spmm_f64_budgeted(&ck, &sparse, &c, &mut machine, budget)?;
    let col0: Vec<f64> = (0..tri.ncols).map(|j| c.as_f64()[j * n_cols]).collect();
    let a0: Vec<f64> = (0..tri.nrows).map(|i| a.as_f64()[i * n_cols]).collect();
    verify_close(&a0, &tri.dense_spmv(&col0), name)?;
    let dram = machine.dram_bytes_total();
    Ok(result_from(
        name,
        group,
        unstructured,
        "spmm",
        variant,
        hw_name,
        1,
        sparse.nnz(),
        &cfg,
        machine.counters(),
        dram,
        warning_strings(&ck),
    ))
}

/// Slice rows `[r0, r1)` of a matrix into a standalone sub-matrix.
fn row_slice(tri: &Triplets, r0: usize, r1: usize) -> Triplets {
    let mut s = Triplets::new(r1 - r0, tri.ncols);
    s.binary = tri.binary;
    for i in 0..tri.nnz() {
        let r = tri.rows[i];
        if r >= r0 && r < r1 {
            s.push(r - r0, tri.cols[i], tri.vals[i]);
        }
    }
    s
}

/// Split rows into `n` contiguous chunks of roughly equal nnz.
fn partition_rows(tri: &Triplets, n: usize) -> Vec<(usize, usize)> {
    let deg = tri.row_degrees();
    let total: usize = deg.iter().sum();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut cuts = Vec::with_capacity(n + 1);
    cuts.push(0);
    let mut acc = 0;
    for (r, d) in deg.iter().enumerate() {
        acc += d;
        if acc >= per && cuts.len() < n {
            cuts.push(r + 1);
            acc = 0;
        }
    }
    while cuts.len() < n {
        cuts.push(tri.nrows);
    }
    cuts.push(tri.nrows);
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Base address where the shared `x` vector is mapped in every thread's
/// address space (so the shared L3 sees one copy, as on real hardware).
const SHARED_X_BASE: u64 = 0x40_0000_0000;

/// Per-thread prepared run (kernel + bound buffers).
struct Prepared {
    ck: CompiledKernel,
    bufs: asap_ir::Buffers,
    args: Vec<V>,
}

/// Run prepared per-thread kernels on the shared-uncore simulator,
/// propagating the first interpreter trap instead of panicking inside
/// the worker closure.
///
/// Thread-count handling: `n_threads` must equal the number of prepared
/// slots (one simulated core per row partition — anything else would
/// leave cores spinning on the clock barrier with no work, or index out
/// of range), and a multi-core simulation must not be launched from
/// inside a [`crate::pool`] matrix-level worker: the simulated cores
/// spin-synchronize their clocks and oversubscribing the host with
/// nested parallelism stalls them. Both misuses are typed errors.
fn run_prepared_parallel(
    cfg: GracemontConfig,
    pf: PrefetcherConfig,
    n_threads: usize,
    prepared: Vec<std::sync::Mutex<Option<Prepared>>>,
) -> Result<(asap_sim::MulticoreResult, u64), AsapError> {
    if n_threads == 0 || n_threads != prepared.len() {
        return Err(AsapError::binding(format!(
            "multicore run: {n_threads} simulated cores for {} prepared partitions",
            prepared.len()
        )));
    }
    if n_threads > 1 && crate::pool::in_worker() {
        return Err(AsapError::binding(
            "multicore simulation cannot run inside a matrix-level worker thread; \
             use pool::matrix_threads(n_threads) to keep multi-core sweeps serial",
        ));
    }
    let total_dram = std::sync::atomic::AtomicU64::new(0);
    let errors: std::sync::Mutex<Vec<AsapError>> = std::sync::Mutex::new(Vec::new());
    let result = run_parallel(cfg, pf, n_threads, |tid, machine| {
        // invariant: each tid owns exactly one slot, taken exactly once;
        // a poisoned lock can only follow a panic elsewhere, so treat it
        // as "nothing to run" rather than panicking again.
        let Some(mut p) = prepared[tid].lock().ok().and_then(|mut s| s.take()) else {
            return;
        };
        // Same engine dispatch as asap_core::run_with_engine(Auto).
        let ran = match &p.ck.program {
            Some(prog) => execute(prog, &p.args, &mut p.bufs, machine),
            None => interpret(&p.ck.kernel.func, &p.args, &mut p.bufs, machine),
        };
        if let Err(e) = ran {
            if let Ok(mut errs) = errors.lock() {
                errs.push(e.into());
            }
            return;
        }
        total_dram.store(
            machine.dram_bytes_total(),
            std::sync::atomic::Ordering::Relaxed,
        );
    });
    if let Some(e) = errors
        .into_inner()
        .ok()
        .and_then(|mut v| v.drain(..).next())
    {
        return Err(e);
    }
    let dram = total_dram.load(std::sync::atomic::Ordering::Relaxed);
    Ok((result, dram))
}

/// Multi-threaded SpMV: contiguous row partitions of roughly equal nnz,
/// one simulated core per thread, shared L3/DRAM, `x` mapped at the same
/// address in all cores (paper Figure 12 setup, the sparsifier's
/// `dense-outer-loop` parallelization strategy).
#[allow(clippy::too_many_arguments)]
pub fn run_spmv_threads(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
    n_threads: usize,
) -> Result<ExperimentResult, AsapError> {
    let x = x_vector(tri.ncols);
    let parts = partition_rows(tri, n_threads);

    let mut warnings = Vec::new();
    let mut prepared: Vec<std::sync::Mutex<Option<Prepared>>> = Vec::with_capacity(parts.len());
    for &(r0, r1) in &parts {
        let slice = row_slice(tri, r0, r1);
        let sparse = SparseTensor::try_from_coo(&slice.try_to_coo_f64()?, Format::csr())?;
        let ck = compile_spmv(&sparse, variant)?;
        let xt = DenseTensor::from_f64(vec![tri.ncols], x.clone());
        let out = DenseTensor::zeros(ValueKind::F64, vec![r1 - r0]);
        let mut bound = bind(&ck.kernel, &sparse, &[&xt], &out)?;
        // Re-map the x buffer to the shared address.
        let x_pos = ck
            .kernel
            .arg_position(KernelArg::DenseInput { input: 1 })
            .ok_or_else(|| AsapError::binding("spmv kernel has no dense input argument"))?;
        let V::Mem(x_buf) = bound.args[x_pos] else {
            return Err(AsapError::binding("dense input did not bind to a buffer"));
        };
        bound.bufs.get_mut(x_buf).base_addr = SHARED_X_BASE;
        warnings.extend(warning_strings(&ck));
        prepared.push(std::sync::Mutex::new(Some(Prepared {
            ck,
            bufs: bound.bufs,
            args: bound.args,
        })));
    }

    let nnz = tri.nnz();
    let (result, dram) = run_prepared_parallel(cfg, pf, n_threads, prepared)?;
    Ok(result_from(
        name,
        group,
        unstructured,
        "spmv",
        variant,
        hw_name,
        n_threads,
        nnz,
        &cfg,
        result.aggregate,
        dram.max(result.dram_bytes),
        warnings,
    ))
}

/// Multi-threaded SpMM (row-partitioned, shared dense C).
#[allow(clippy::too_many_arguments)]
pub fn run_spmm_threads(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    n_cols: usize,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
    n_threads: usize,
) -> Result<ExperimentResult, AsapError> {
    let parts = partition_rows(tri, n_threads);
    let spec = KernelSpec::spmm(ValueKind::F64);
    let cvals: Vec<f64> = (0..tri.ncols * n_cols)
        .map(|i| 0.5 + (i % 17) as f64 * 0.0625)
        .collect();

    let mut warnings = Vec::new();
    let mut prepared: Vec<std::sync::Mutex<Option<Prepared>>> = Vec::with_capacity(parts.len());
    for &(r0, r1) in &parts {
        let slice = row_slice(tri, r0, r1);
        let sparse = SparseTensor::try_from_coo(&slice.try_to_coo_f64()?, Format::csr())?;
        let ck = compile_cached(
            &spec,
            sparse.format(),
            sparse.index_width(),
            &variant.strategy(),
        )?;
        let ct = DenseTensor::from_f64(vec![tri.ncols, n_cols], cvals.clone());
        let out = DenseTensor::zeros(ValueKind::F64, vec![r1 - r0, n_cols]);
        let mut bound = bind(&ck.kernel, &sparse, &[&ct], &out)?;
        let c_pos = ck
            .kernel
            .arg_position(KernelArg::DenseInput { input: 1 })
            .ok_or_else(|| AsapError::binding("spmm kernel has no dense input argument"))?;
        let V::Mem(c_buf) = bound.args[c_pos] else {
            return Err(AsapError::binding("dense input did not bind to a buffer"));
        };
        bound.bufs.get_mut(c_buf).base_addr = SHARED_X_BASE;
        warnings.extend(warning_strings(&ck));
        prepared.push(std::sync::Mutex::new(Some(Prepared {
            ck,
            bufs: bound.bufs,
            args: bound.args,
        })));
    }

    let nnz = tri.nnz();
    let (result, dram) = run_prepared_parallel(cfg, pf, n_threads, prepared)?;
    Ok(result_from(
        name,
        group,
        unstructured,
        "spmm",
        variant,
        hw_name,
        n_threads,
        nnz,
        &cfg,
        result.aggregate,
        dram.max(result.dram_bytes),
        warnings,
    ))
}

fn verify_close(got: &[f64], want: &[f64], name: &str) -> Result<(), AsapError> {
    if got.len() != want.len() {
        return Err(AsapError::mismatch(format!(
            "{name}: length mismatch: got {} values, reference has {}",
            got.len(),
            want.len()
        )));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-9 * (1.0 + g.abs().max(w.abs()));
        if (g - w).abs() > tol {
            return Err(AsapError::mismatch(format!(
                "{name}: row {i} differs: {g} vs {w}"
            )));
        }
    }
    Ok(())
}

/// A matrix the sweep could not run, with the diagnostic explaining why.
#[derive(Debug, Clone)]
pub struct SkippedMatrix {
    pub matrix: String,
    pub kind: &'static str,
    pub reason: String,
    /// How many times the matrix was attempted before being skipped
    /// (1 for typed errors; the pool's retry cap for panics).
    pub attempts: usize,
}

/// Outcome of a directory sweep: per-matrix results plus the matrices
/// that had to be skipped (corrupt files, binding failures, ...).
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    pub results: Vec<ExperimentResult>,
    pub skipped: Vec<SkippedMatrix>,
}

impl SweepReport {
    /// Human-readable completion summary, listing every skip with its
    /// error kind and message.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} matrices ran, {} skipped\n",
            self.results.len(),
            self.skipped.len()
        );
        for sk in &self.skipped {
            s.push_str(&format!(
                "  skipped {} [{}] after {} attempt(s): {}\n",
                sk.matrix, sk.kind, sk.attempts, sk.reason
            ));
        }
        s
    }
}

/// SpMV-sweep every `.mtx` file in `dir` (sorted by name). A matrix that
/// fails to parse, compile, bind, or verify is skipped and reported; the
/// sweep itself only fails if the directory cannot be read at all.
pub fn sweep_spmv_dir(
    dir: &Path,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
) -> Result<SweepReport, AsapError> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| AsapError::io(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "mtx"))
        .collect();
    paths.sort();

    let mut report = SweepReport::default();
    for path in paths {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let outcome = (|| -> Result<ExperimentResult, AsapError> {
            let tri = {
                let span = asap_obs::span_with("parse.matrix", || vec![("matrix", name.clone())]);
                let file = std::fs::File::open(&path)?;
                let tri = read_matrix_market(std::io::BufReader::new(file))?;
                span.attr("nnz", tri.nnz());
                tri
            };
            run_spmv(&tri, &name, "sweep", true, variant, pf, hw_name, cfg)
        })();
        match outcome {
            Ok(r) => report.results.push(r),
            Err(e) => report.skipped.push(SkippedMatrix {
                matrix: name,
                kind: e.kind(),
                reason: e.to_string(),
                attempts: 1,
            }),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_matrices::gen;

    fn cfg() -> GracemontConfig {
        GracemontConfig::scaled()
    }

    #[test]
    fn spmv_experiment_runs_and_verifies() {
        let tri = gen::erdos_renyi(4096, 6, 3);
        let r = run_spmv(
            &tri,
            "er",
            "Gleich",
            true,
            Variant::Baseline,
            PrefetcherConfig::hw_default(),
            "default",
            cfg(),
        )
        .unwrap();
        assert!(r.nnz <= tri.nnz() && r.nnz > 0, "dedup'd nnz");
        assert!(r.throughput > 0.0);
        assert!(r.cycles > 0);
        assert_eq!(r.variant, "baseline");
        assert!(r.warnings.is_empty(), "{:?}", r.warnings);
    }

    #[test]
    fn asap_issues_prefetches_baseline_does_not() {
        let tri = gen::erdos_renyi(2048, 6, 5);
        let base = run_spmv(
            &tri,
            "er",
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        )
        .unwrap();
        let asap = run_spmv(
            &tri,
            "er",
            "g",
            true,
            Variant::Asap { distance: 16 },
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        )
        .unwrap();
        assert_eq!(base.sw_pf_issued, 0);
        assert!(asap.sw_pf_issued as usize >= tri.nnz(), "{asap:?}");
    }

    #[test]
    fn partition_balances_nnz() {
        let tri = gen::power_law(4000, 8, 1.0, 2);
        let parts = partition_rows(&tri, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[3].1, 4000);
        let deg = tri.row_degrees();
        let sums: Vec<usize> = parts.iter().map(|&(a, b)| deg[a..b].iter().sum()).collect();
        let max = *sums.iter().max().unwrap();
        let min = *sums.iter().min().unwrap();
        assert!(max < 2 * min + tri.nnz() / 2, "{sums:?}");
    }

    #[test]
    fn threaded_spmv_covers_all_rows() {
        let tri = gen::erdos_renyi(8192, 6, 9);
        let r = run_spmv_threads(
            &tri,
            "er",
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
            4,
        )
        .unwrap();
        assert_eq!(r.threads, 4);
        assert_eq!(r.nnz, tri.nnz()); // threaded path reports input nnz
        assert!(r.cycles > 0);
    }

    #[test]
    fn multicore_inside_pool_worker_is_a_typed_error() {
        let tri = gen::erdos_renyi(512, 4, 2);
        let outcomes = crate::pool::parallel_map(vec![0, 1], 2, |_, _| {
            run_spmv_threads(
                &tri,
                "er",
                "g",
                true,
                Variant::Baseline,
                PrefetcherConfig::all_off(),
                "off",
                cfg(),
                2,
            )
        });
        for out in outcomes {
            let err = out.expect_err("nested multicore must be rejected");
            assert_eq!(err.kind(), "binding");
            assert!(err.to_string().contains("matrix-level worker"), "{err}");
        }
    }

    #[test]
    fn spmm_experiment_runs() {
        let tri = gen::erdos_renyi(1024, 4, 1);
        let r = run_spmm(
            &tri,
            "er",
            "g",
            true,
            8,
            Variant::Asap { distance: 8 },
            PrefetcherConfig::optimized_spmm(),
            "optimized",
            cfg(),
        )
        .unwrap();
        assert_eq!(r.kernel, "spmm");
        assert!(r.sw_pf_issued > 0);
    }

    #[test]
    fn json_escapes_special_characters() {
        let tri = gen::erdos_renyi(512, 4, 2);
        let mut r = run_spmv(
            &tri,
            "a\"b\\c",
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        )
        .unwrap();
        r.warnings.push("line1\nline2".into());
        let json = r.to_json();
        assert!(json.contains("\"a\\\"b\\\\c\""), "{json}");
        assert!(json.contains("line1\\nline2"), "{json}");
        let arr = results_to_json(&[r.clone(), r]);
        assert!(arr.starts_with("[\n"));
        assert!(arr.trim_end().ends_with(']'));
    }

    #[test]
    fn json_roundtrips_through_from_json() {
        let tri = gen::erdos_renyi(512, 4, 2);
        let mut r = run_spmv(
            &tri,
            "round\"trip",
            "g",
            true,
            Variant::Asap { distance: 11 },
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        )
        .unwrap();
        r.warnings.push("line1\nline2 \"quoted\"".into());
        let back = ExperimentResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back.to_json(), r.to_json(), "byte-identical roundtrip");
        assert_eq!(back.throughput.to_bits(), r.throughput.to_bits());
        assert_eq!(back.l2_mpki.to_bits(), r.l2_mpki.to_bits());
        assert_eq!(back.warnings, r.warnings);
    }

    #[test]
    fn from_json_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "{\"matrix\":",
            "{\"matrix\":\"x\"",
            "{\"bogus\":1}",
            "{\"cycles\":\"x\"}",
            "[1,2]",
            "{\"matrix\":\"a\"} trailing",
        ] {
            assert!(ExperimentResult::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn budgeted_run_traps_with_typed_error() {
        let tri = gen::erdos_renyi(256, 4, 7);
        let err = run_spmv_budgeted(
            &tri,
            "er",
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
            &Budget::unlimited().with_fuel(3),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "budget");
        let v = err.budget_violation().expect("structured violation");
        assert_eq!(v.limit, 3);
        // A generous budget completes and still verifies the result.
        let ok = run_spmv_budgeted(
            &tri,
            "er",
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
            &Budget::unlimited().with_fuel(100_000_000),
        )
        .unwrap();
        assert!(ok.cycles > 0);
    }

    #[test]
    fn sweep_skips_corrupt_matrix_and_finishes() {
        let dir = std::env::temp_dir().join(format!("asap-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = "%%MatrixMarket matrix coordinate real general\n\
                    4 4 4\n1 1 1.0\n2 2 2.0\n3 3 3.0\n4 4 4.0\n";
        std::fs::write(dir.join("a_good.mtx"), good).unwrap();
        std::fs::write(dir.join("c_good.mtx"), good).unwrap();
        // Out-of-range coordinate on the first entry line.
        let corrupt = "%%MatrixMarket matrix coordinate real general\n\
                       2 2 1\n5 5 1.0\n";
        std::fs::write(dir.join("b_corrupt.mtx"), corrupt).unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a matrix").unwrap();

        let report = sweep_spmv_dir(
            &dir,
            Variant::Asap { distance: 8 },
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        )
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        assert_eq!(report.results.len(), 2, "{}", report.summary());
        assert_eq!(report.skipped.len(), 1, "{}", report.summary());
        assert_eq!(report.skipped[0].matrix, "b_corrupt");
        assert_eq!(report.skipped[0].kind, "parse");
        assert!(
            report.skipped[0].reason.contains("line 3"),
            "{}",
            report.skipped[0].reason
        );
        let summary = report.summary();
        assert!(summary.contains("2 matrices ran, 1 skipped"), "{summary}");
        assert!(summary.contains("b_corrupt"), "{summary}");
    }

    #[test]
    fn sweep_on_missing_dir_is_an_io_error() {
        let err = sweep_spmv_dir(
            Path::new("/nonexistent/asap-sweep"),
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
