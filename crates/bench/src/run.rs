//! Running one (matrix, kernel, variant, prefetcher-config) experiment on
//! the simulator and extracting the paper's metrics.

use asap_core::{compile_with_width, CompiledKernel, PrefetchStrategy};
use asap_ir::{interpret, V};
use asap_matrices::Triplets;
use asap_sim::{run_parallel, GracemontConfig, Machine, PrefetcherConfig};
use asap_sparsifier::{bind, KernelArg, KernelSpec};
use asap_tensor::{DenseTensor, Format, SparseTensor, ValueKind};
use serde::Serialize;

/// Which implementation variant to run (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Variant {
    Baseline,
    Asap { distance: usize },
    AinsworthJones { distance: usize },
}

impl Variant {
    pub fn strategy(&self) -> PrefetchStrategy {
        match *self {
            Variant::Baseline => PrefetchStrategy::none(),
            Variant::Asap { distance } => PrefetchStrategy::asap(distance),
            Variant::AinsworthJones { distance } => PrefetchStrategy::aj(distance),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::Asap { .. } => "asap",
            Variant::AinsworthJones { .. } => "aj",
        }
    }
}

/// One experiment's outcome, serializable for EXPERIMENTS.md tooling.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    pub matrix: String,
    pub group: String,
    pub unstructured: bool,
    pub kernel: String,
    pub variant: String,
    pub hw_config: String,
    pub threads: usize,
    pub nnz: usize,
    pub cycles: u64,
    pub instructions: u64,
    /// nnz processed per millisecond at the configured frequency — the
    /// paper's throughput metric.
    pub throughput: f64,
    /// L2 MPKI of this run.
    pub l2_mpki: f64,
    pub sw_pf_issued: u64,
    pub sw_pf_dropped: u64,
    pub hw_pf_issued: u64,
    pub dram_bytes: u64,
    pub stall_cycles: u64,
}

fn result_from(
    name: &str,
    group: &str,
    unstructured: bool,
    kernel: &str,
    variant: Variant,
    hw_name: &str,
    threads: usize,
    nnz: usize,
    cfg: &GracemontConfig,
    agg: asap_sim::Counters,
    dram_bytes: u64,
) -> ExperimentResult {
    let ms = cfg.cycles_to_seconds(agg.cycles) * 1e3;
    ExperimentResult {
        matrix: name.to_string(),
        group: group.to_string(),
        unstructured,
        kernel: kernel.to_string(),
        variant: variant.label().to_string(),
        hw_config: hw_name.to_string(),
        threads,
        nnz,
        cycles: agg.cycles,
        instructions: agg.instructions,
        throughput: nnz as f64 / ms,
        l2_mpki: agg.l2_mpki(),
        sw_pf_issued: agg.sw_pf_issued,
        sw_pf_dropped: agg.sw_pf_dropped,
        hw_pf_issued: agg.hw_pf_issued,
        dram_bytes,
        stall_cycles: agg.stall_cycles,
    }
}

/// Deterministic dense vector values.
fn x_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.25 + (i % 31) as f64 * 0.125).collect()
}

fn compile_spmv(t: &SparseTensor, variant: Variant) -> CompiledKernel {
    let spec = KernelSpec::spmv(ValueKind::F64);
    compile_with_width(&spec, t.format(), t.index_width(), &variant.strategy())
        .expect("spmv compiles")
}

/// Single-threaded SpMV of `tri` under the given variant and hardware
/// prefetcher configuration. The result is verified against the dense
/// reference.
pub fn run_spmv(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
) -> ExperimentResult {
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let ck = compile_spmv(&sparse, variant);
    let x = x_vector(tri.ncols);
    let mut machine = Machine::new(cfg, pf);
    let y = asap_core::run_spmv_f64_with(&ck, &sparse, &x, &mut machine);
    verify_close(&y, &tri.dense_spmv(&x), name);
    let dram = machine.dram_bytes_total();
    result_from(
        name,
        group,
        unstructured,
        "spmv",
        variant,
        hw_name,
        1,
        sparse.nnz(),
        &cfg,
        machine.counters(),
        dram,
    )
}

/// Single-threaded SpMM (`A = B·C`, `n_cols` dense columns).
pub fn run_spmm(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    n_cols: usize,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
) -> ExperimentResult {
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let spec = KernelSpec::spmm(ValueKind::F64);
    let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), &variant.strategy())
        .expect("spmm compiles");
    let c = DenseTensor::from_f64(
        vec![tri.ncols, n_cols],
        (0..tri.ncols * n_cols)
            .map(|i| 0.5 + (i % 17) as f64 * 0.0625)
            .collect(),
    );
    let mut machine = Machine::new(cfg, pf);
    let a = asap_core::run_spmm_f64_with(&ck, &sparse, &c, &mut machine);
    // Spot-verify one column against the SpMV reference.
    let col0: Vec<f64> = (0..tri.ncols).map(|j| c.as_f64()[j * n_cols]).collect();
    let a0: Vec<f64> = (0..tri.nrows).map(|i| a.as_f64()[i * n_cols]).collect();
    verify_close(&a0, &tri.dense_spmv(&col0), name);
    let dram = machine.dram_bytes_total();
    result_from(
        name,
        group,
        unstructured,
        "spmm",
        variant,
        hw_name,
        1,
        sparse.nnz(),
        &cfg,
        machine.counters(),
        dram,
    )
}

/// Slice rows `[r0, r1)` of a matrix into a standalone sub-matrix.
fn row_slice(tri: &Triplets, r0: usize, r1: usize) -> Triplets {
    let mut s = Triplets::new(r1 - r0, tri.ncols);
    s.binary = tri.binary;
    for i in 0..tri.nnz() {
        let r = tri.rows[i];
        if r >= r0 && r < r1 {
            s.push(r - r0, tri.cols[i], tri.vals[i]);
        }
    }
    s
}

/// Split rows into `n` contiguous chunks of roughly equal nnz.
fn partition_rows(tri: &Triplets, n: usize) -> Vec<(usize, usize)> {
    let deg = tri.row_degrees();
    let total: usize = deg.iter().sum();
    let per = total.div_ceil(n.max(1)).max(1);
    let mut cuts = Vec::with_capacity(n + 1);
    cuts.push(0);
    let mut acc = 0;
    for (r, d) in deg.iter().enumerate() {
        acc += d;
        if acc >= per && cuts.len() < n {
            cuts.push(r + 1);
            acc = 0;
        }
    }
    while cuts.len() < n {
        cuts.push(tri.nrows);
    }
    cuts.push(tri.nrows);
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Base address where the shared `x` vector is mapped in every thread's
/// address space (so the shared L3 sees one copy, as on real hardware).
const SHARED_X_BASE: u64 = 0x40_0000_0000;

/// Multi-threaded SpMV: contiguous row partitions of roughly equal nnz,
/// one simulated core per thread, shared L3/DRAM, `x` mapped at the same
/// address in all cores (paper Figure 12 setup, the sparsifier's
/// `dense-outer-loop` parallelization strategy).
pub fn run_spmv_threads(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
    n_threads: usize,
) -> ExperimentResult {
    let x = x_vector(tri.ncols);
    let parts = partition_rows(tri, n_threads);

    // Per-thread prepared runs (kernel + bound buffers).
    struct Prepared {
        ck: CompiledKernel,
        bufs: asap_ir::Buffers,
        args: Vec<V>,
    }
    let prepared: Vec<std::sync::Mutex<Option<Prepared>>> = parts
        .iter()
        .map(|&(r0, r1)| {
            let slice = row_slice(tri, r0, r1);
            let sparse = SparseTensor::from_coo(&slice.to_coo_f64(), Format::csr());
            let ck = compile_spmv(&sparse, variant);
            let xt = DenseTensor::from_f64(vec![tri.ncols], x.clone());
            let out = DenseTensor::zeros(ValueKind::F64, vec![r1 - r0]);
            let mut bound =
                bind(&ck.kernel, &sparse, &[&xt], &out).expect("binding a prepared slice");
            // Re-map the x buffer to the shared address.
            let x_pos = ck
                .kernel
                .arg_position(KernelArg::DenseInput { input: 1 })
                .expect("spmv has one dense input");
            let V::Mem(x_buf) = bound.args[x_pos] else {
                unreachable!("dense input binds to a buffer");
            };
            bound.bufs.get_mut(x_buf).base_addr = SHARED_X_BASE;
            std::sync::Mutex::new(Some(Prepared {
                ck,
                bufs: bound.bufs,
                args: bound.args,
            }))
        })
        .collect();

    let nnz = tri.nnz();
    let total_dram = std::sync::atomic::AtomicU64::new(0);
    let result = run_parallel(cfg, pf, n_threads, |tid, machine| {
        let mut p = prepared[tid]
            .lock()
            .expect("prepared lock")
            .take()
            .expect("each partition runs once");
        interpret(&p.ck.kernel.func, &p.args, &mut p.bufs, machine)
            .expect("simulated spmv run failed");
        total_dram.store(
            machine.dram_bytes_total(),
            std::sync::atomic::Ordering::Relaxed,
        );
    });
    let dram = total_dram.load(std::sync::atomic::Ordering::Relaxed);
    result_from(
        name,
        group,
        unstructured,
        "spmv",
        variant,
        hw_name,
        n_threads,
        nnz,
        &cfg,
        result.aggregate,
        dram.max(result.dram_bytes),
    )
}

/// Multi-threaded SpMM (row-partitioned, shared dense C).
pub fn run_spmm_threads(
    tri: &Triplets,
    name: &str,
    group: &str,
    unstructured: bool,
    n_cols: usize,
    variant: Variant,
    pf: PrefetcherConfig,
    hw_name: &str,
    cfg: GracemontConfig,
    n_threads: usize,
) -> ExperimentResult {
    let parts = partition_rows(tri, n_threads);
    let spec = KernelSpec::spmm(ValueKind::F64);
    let cvals: Vec<f64> = (0..tri.ncols * n_cols)
        .map(|i| 0.5 + (i % 17) as f64 * 0.0625)
        .collect();

    struct Prepared {
        ck: CompiledKernel,
        bufs: asap_ir::Buffers,
        args: Vec<V>,
    }
    let prepared: Vec<std::sync::Mutex<Option<Prepared>>> = parts
        .iter()
        .map(|&(r0, r1)| {
            let slice = row_slice(tri, r0, r1);
            let sparse = SparseTensor::from_coo(&slice.to_coo_f64(), Format::csr());
            let ck = compile_with_width(
                &spec,
                sparse.format(),
                sparse.index_width(),
                &variant.strategy(),
            )
            .expect("spmm compiles");
            let ct = DenseTensor::from_f64(vec![tri.ncols, n_cols], cvals.clone());
            let out = DenseTensor::zeros(ValueKind::F64, vec![r1 - r0, n_cols]);
            let mut bound = bind(&ck.kernel, &sparse, &[&ct], &out).expect("binding");
            let c_pos = ck
                .kernel
                .arg_position(KernelArg::DenseInput { input: 1 })
                .expect("spmm has one dense input");
            let V::Mem(c_buf) = bound.args[c_pos] else {
                unreachable!()
            };
            bound.bufs.get_mut(c_buf).base_addr = SHARED_X_BASE;
            std::sync::Mutex::new(Some(Prepared {
                ck,
                bufs: bound.bufs,
                args: bound.args,
            }))
        })
        .collect();

    let nnz = tri.nnz();
    let result = run_parallel(cfg, pf, n_threads, |tid, machine| {
        let mut p = prepared[tid]
            .lock()
            .expect("prepared lock")
            .take()
            .expect("each partition runs once");
        interpret(&p.ck.kernel.func, &p.args, &mut p.bufs, machine)
            .expect("simulated spmm run failed");
    });
    result_from(
        name,
        group,
        unstructured,
        "spmm",
        variant,
        hw_name,
        n_threads,
        nnz,
        &cfg,
        result.aggregate,
        result.dram_bytes,
    )
}

fn verify_close(got: &[f64], want: &[f64], name: &str) {
    assert_eq!(got.len(), want.len(), "{name}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-9 * (1.0 + g.abs().max(w.abs()));
        assert!(
            (g - w).abs() <= tol,
            "{name}: row {i} differs: {g} vs {w}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_matrices::gen;

    fn cfg() -> GracemontConfig {
        GracemontConfig::scaled()
    }

    #[test]
    fn spmv_experiment_runs_and_verifies() {
        let tri = gen::erdos_renyi(4096, 6, 3);
        let r = run_spmv(
            &tri,
            "er",
            "Gleich",
            true,
            Variant::Baseline,
            PrefetcherConfig::hw_default(),
            "default",
            cfg(),
        );
        assert!(r.nnz <= tri.nnz() && r.nnz > 0, "dedup'd nnz");
        assert!(r.throughput > 0.0);
        assert!(r.cycles > 0);
        assert_eq!(r.variant, "baseline");
    }

    #[test]
    fn asap_issues_prefetches_baseline_does_not() {
        let tri = gen::erdos_renyi(2048, 6, 5);
        let base = run_spmv(
            &tri,
            "er",
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        );
        let asap = run_spmv(
            &tri,
            "er",
            "g",
            true,
            Variant::Asap { distance: 16 },
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
        );
        assert_eq!(base.sw_pf_issued, 0);
        assert!(asap.sw_pf_issued as usize >= tri.nnz(), "{asap:?}");
    }

    #[test]
    fn partition_balances_nnz() {
        let tri = gen::power_law(4000, 8, 1.0, 2);
        let parts = partition_rows(&tri, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[3].1, 4000);
        let deg = tri.row_degrees();
        let sums: Vec<usize> = parts
            .iter()
            .map(|&(a, b)| deg[a..b].iter().sum())
            .collect();
        let max = *sums.iter().max().unwrap();
        let min = *sums.iter().min().unwrap();
        assert!(max < 2 * min + tri.nnz() / 2, "{sums:?}");
    }

    #[test]
    fn threaded_spmv_covers_all_rows() {
        let tri = gen::erdos_renyi(8192, 6, 9);
        let r = run_spmv_threads(
            &tri,
            "er",
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            cfg(),
            4,
        );
        assert_eq!(r.threads, 4);
        assert_eq!(r.nnz, tri.nnz());  // threaded path reports input nnz
        assert!(r.cycles > 0);
    }

    #[test]
    fn spmm_experiment_runs() {
        let tri = gen::erdos_renyi(1024, 4, 1);
        let r = run_spmm(
            &tri,
            "er",
            "g",
            true,
            8,
            Variant::Asap { distance: 8 },
            PrefetcherConfig::optimized_spmm(),
            "optimized",
            cfg(),
        );
        assert_eq!(r.kernel, "spmm");
        assert!(r.sw_pf_issued > 0);
    }
}
