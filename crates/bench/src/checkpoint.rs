//! Crash-only sweep checkpoints: every completed (matrix, kernel,
//! variant, hw-config, threads) cell is journaled to an append-only
//! JSONL file the moment it finishes, so a sweep killed mid-flight —
//! OOM, deadline, ctrl-C — resumes from the journal instead of starting
//! over. Each journal line is one [`ExperimentResult::to_json`] object;
//! the cell key is derived from the result's own identifying fields, so
//! the journal needs no separate key column and a resumed sweep
//! reproduces byte-identical tables (the recorded results *are* the
//! original results).
//!
//! Journal writes are best-effort: an unwritable journal degrades to an
//! uncheckpointed run with a warning on stderr, never a failed sweep.

use crate::run::ExperimentResult;
use asap_ir::AsapError;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The journal key of one sweep cell.
pub fn cell_key(
    matrix: &str,
    kernel: &str,
    variant: &str,
    hw_config: &str,
    threads: usize,
) -> String {
    format!("{matrix}|{kernel}|{variant}|{hw_config}|{threads}")
}

fn key_of(r: &ExperimentResult) -> String {
    cell_key(&r.matrix, &r.kernel, &r.variant, &r.hw_config, r.threads)
}

struct Inner {
    done: HashMap<String, ExperimentResult>,
    file: Option<File>,
    write_failed: bool,
}

/// A sweep's checkpoint journal. Thread-safe: pool workers record cells
/// concurrently through one shared `Checkpoint`.
pub struct Checkpoint {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl Checkpoint {
    /// A checkpoint that records nothing and resumes nothing — the
    /// `--no-checkpoint` escape hatch, so call sites need no branching.
    pub fn disabled() -> Checkpoint {
        Checkpoint {
            path: PathBuf::new(),
            inner: Mutex::new(Inner {
                done: HashMap::new(),
                file: None,
                write_failed: false,
            }),
        }
    }

    /// Open (or create) the journal at `path`. With `resume` set,
    /// previously journaled cells are loaded and will be returned by
    /// [`run_cell`](Checkpoint::run_cell) without re-running; without
    /// it, any existing journal is truncated and the sweep starts
    /// fresh. Corrupt or truncated journal lines are skipped (their
    /// cells simply re-run).
    pub fn open(path: &Path, resume: bool) -> Result<Checkpoint, AsapError> {
        let _s = asap_obs::span_with("checkpoint.open", || vec![("resume", resume.to_string())]);
        let mut done = HashMap::new();
        if resume {
            match File::open(path) {
                Ok(f) => {
                    for line in BufReader::new(f).lines() {
                        let line = line.map_err(|e| {
                            AsapError::io(format!("reading {}: {e}", path.display()))
                        })?;
                        if line.trim().is_empty() {
                            continue;
                        }
                        match ExperimentResult::from_json(&line) {
                            Ok(r) => {
                                done.insert(key_of(&r), r);
                            }
                            Err(e) => {
                                eprintln!(
                                    "checkpoint {}: skipping corrupt line ({e})",
                                    path.display()
                                );
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(AsapError::io(format!(
                        "cannot open {}: {e}",
                        path.display()
                    )))
                }
            }
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| AsapError::io(format!("mkdir {}: {e}", dir.display())))?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(resume)
            .write(true)
            .truncate(!resume)
            .open(path)
            .map_err(|e| AsapError::io(format!("cannot open {}: {e}", path.display())))?;
        Ok(Checkpoint {
            path: path.to_path_buf(),
            inner: Mutex::new(Inner {
                done,
                file: Some(file),
                write_failed: false,
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this lock can only come from a
        // crash-isolated worker; the done-map and append-only file are
        // both still coherent (each record is inserted atomically), so
        // recover the guard rather than cascading the panic.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Number of cells loaded from a resumed journal.
    pub fn resumed_cells(&self) -> usize {
        self.lock().done.len()
    }

    /// The already-journaled result for `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<ExperimentResult> {
        self.lock().done.get(key).cloned()
    }

    /// Journal a completed cell. Best-effort: on the first write
    /// failure a warning is printed and further writes are skipped.
    pub fn record(&self, r: &ExperimentResult) {
        let _s = asap_obs::span("checkpoint.record");
        asap_obs::counter_inc("checkpoint.records");
        let mut g = self.lock();
        let line = r.to_json();
        let healthy = !g.write_failed;
        if let Some(f) = g.file.as_mut() {
            if healthy && writeln!(f, "{line}").and_then(|()| f.flush()).is_err() {
                eprintln!(
                    "checkpoint {}: journal write failed; sweep continues unjournaled",
                    self.path.display()
                );
                g.write_failed = true;
            }
        }
        g.done.insert(key_of(r), r.clone());
    }

    /// Run one sweep cell through the journal: return the recorded
    /// result if `key` already completed, otherwise run `f`, journal
    /// its success, and return it. Errors are not journaled — a failed
    /// cell re-runs on resume.
    pub fn run_cell<F>(&self, key: &str, f: F) -> Result<ExperimentResult, AsapError>
    where
        F: FnOnce() -> Result<ExperimentResult, AsapError>,
    {
        if let Some(r) = self.lookup(key) {
            asap_obs::counter_inc("checkpoint.cell_hits");
            return Ok(r);
        }
        let r = f()?;
        self.record(&r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_spmv, Variant};
    use asap_matrices::gen;
    use asap_sim::{GracemontConfig, PrefetcherConfig};

    fn sample(name: &str) -> ExperimentResult {
        let tri = gen::erdos_renyi(256, 4, 3);
        run_spmv(
            &tri,
            name,
            "g",
            true,
            Variant::Baseline,
            PrefetcherConfig::all_off(),
            "off",
            GracemontConfig::scaled(),
        )
        .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("asap-ckpt-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn killed_sweep_resumes_with_identical_results() {
        let path = tmp("resume");
        let a = sample("m_a");
        let b = sample("m_b");
        // First (killed) sweep records only cell a.
        {
            let ck = Checkpoint::open(&path, false).unwrap();
            ck.record(&a);
        } // process "dies" here
        let ck = Checkpoint::open(&path, true).unwrap();
        assert_eq!(ck.resumed_cells(), 1);
        let mut ran = 0;
        let ka = cell_key(&a.matrix, &a.kernel, &a.variant, &a.hw_config, a.threads);
        let kb = cell_key(&b.matrix, &b.kernel, &b.variant, &b.hw_config, b.threads);
        let ra = ck
            .run_cell(&ka, || {
                ran += 1;
                Ok(sample("m_a"))
            })
            .unwrap();
        assert_eq!(ran, 0, "journaled cell must not re-run");
        assert_eq!(ra.to_json(), a.to_json(), "byte-identical resumed result");
        let rb = ck
            .run_cell(&kb, || {
                ran += 1;
                Ok(b.clone())
            })
            .unwrap();
        assert_eq!(ran, 1, "missing cell runs once");
        assert_eq!(rb.to_json(), b.to_json());
        // Resume again: both cells now journaled.
        let ck2 = Checkpoint::open(&path, true).unwrap();
        assert_eq!(ck2.resumed_cells(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_open_truncates_and_corrupt_lines_are_skipped() {
        let path = tmp("truncate");
        let a = sample("m_c");
        std::fs::write(
            &path,
            format!("{}\nnot json at all\n{{\"matrix\":\n", a.to_json()),
        )
        .unwrap();
        // Resume skips the two corrupt lines, keeps the good one.
        let ck = Checkpoint::open(&path, true).unwrap();
        assert_eq!(ck.resumed_cells(), 1);
        drop(ck);
        // A non-resume open starts fresh.
        let ck = Checkpoint::open(&path, false).unwrap();
        assert_eq!(ck.resumed_cells(), 0);
        drop(ck);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_checkpoint_records_nothing() {
        let ck = Checkpoint::disabled();
        let a = sample("m_d");
        ck.record(&a);
        // Recording still memoizes in-process (idempotent re-runs)...
        assert_eq!(ck.resumed_cells(), 1);
        // ...but a failed cell still surfaces its error.
        let err = ck
            .run_cell("missing", || Err(AsapError::io("boom")))
            .unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
