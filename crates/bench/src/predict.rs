//! An analytic predictor for the ASaP-vs-A&J advantage.
//!
//! Section 3.2.2's mechanism is purely structural: A&J's loop-bound clamp
//! loses the last `distance` look-aheads of every segment, so its gather
//! coverage on a CSR matrix is the fraction of non-zeros that sit more
//! than `distance` positions before their segment's end. ASaP covers
//! (essentially) everything. The expected advantage can therefore be
//! estimated from the row-length distribution alone — before running
//! anything.

use asap_matrices::Triplets;

/// Fraction of non-zeros whose gather A&J's clamped look-ahead reaches
/// (distance `d`): element `k` of a row of length `len` is covered when
/// `k + d < len` — i.e. `max(len - d, 0)` elements per row — plus the
/// segment-end element itself, which the clamp keeps prefetching.
pub fn aj_coverage(tri: &Triplets, distance: usize) -> f64 {
    let nnz = tri.nnz();
    if nnz == 0 {
        return 0.0;
    }
    let covered: usize = tri
        .row_degrees()
        .iter()
        .map(|&len| len.saturating_sub(distance).max(usize::from(len > 0)))
        .sum();
    (covered as f64 / nnz as f64).min(1.0)
}

/// Crude speedup-advantage estimate for ASaP over A&J on a memory-bound
/// matrix: if a fraction `c` of gathers is covered by A&J and ~all by
/// ASaP, and a covered gather costs `hit` cycles vs `miss` uncovered,
/// the per-nnz time ratio is
/// `(c*hit + (1-c)*miss) / hit`-ish, damped by the non-gather work `w`.
pub fn predicted_advantage(
    coverage_aj: f64,
    miss_cycles: f64,
    hit_cycles: f64,
    other_work_cycles: f64,
) -> f64 {
    let asap = other_work_cycles + hit_cycles;
    let aj = other_work_cycles + coverage_aj * hit_cycles + (1.0 - coverage_aj) * miss_cycles;
    aj / asap
}

/// Convenience: predict from a matrix + the simulator's default latencies.
pub fn predict_asap_over_aj(tri: &Triplets, distance: usize) -> f64 {
    let c = aj_coverage(tri, distance);
    // Defaults: DRAM residual after MLP ≈ 50 cycles, covered gather ≈ L2
    // hit ≈ 4 cycles effective, ~8 cycles non-gather work per nnz.
    predicted_advantage(c, 50.0, 4.0, 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_matrices::gen;

    #[test]
    fn coverage_is_zero_ish_for_short_rows() {
        let tri = gen::road_network(5_000, 1); // degrees 2-4
        let c = aj_coverage(&tri, 45);
        // Only the segment-end element is covered: ~1/3 of nnz.
        assert!(c < 0.45, "{c}");
        assert!(c > 0.2, "{c}");
    }

    #[test]
    fn coverage_is_full_for_long_rows() {
        let tri = gen::banded(2_000, 100, 1); // rows ~201 long
        let c = aj_coverage(&tri, 16);
        assert!(c > 0.9, "{c}");
    }

    #[test]
    fn advantage_grows_as_coverage_shrinks() {
        let a_low = predicted_advantage(0.2, 50.0, 4.0, 8.0);
        let a_high = predicted_advantage(0.95, 50.0, 4.0, 8.0);
        assert!(a_low > 2.0, "{a_low}");
        assert!(a_high < 1.3, "{a_high}");
        assert!(a_low > a_high);
    }

    #[test]
    fn prediction_orders_matrices_like_measurement() {
        // The predictor must rank a short-row matrix above a long-row
        // matrix for the same distance, matching the measured Figure 11
        // ordering (road/er ≫ banded).
        let short = gen::road_network(3_000, 2);
        let long = gen::banded(1_000, 250, 2); // rows ~10x the distance
        let p_short = predict_asap_over_aj(&short, 45);
        let p_long = predict_asap_over_aj(&long, 45);
        assert!(
            p_short > 2.0 && p_long < 1.5 && p_short > p_long,
            "short {p_short:.2} vs long {p_long:.2}"
        );
    }

    #[test]
    fn prediction_matches_simulated_ratio_directionally() {
        use crate::run::{run_spmv, Variant};
        use asap_sim::{GracemontConfig, PrefetcherConfig};
        // Small memory-bound config for a fast check.
        let cfg = GracemontConfig {
            l2: asap_sim::CacheParams {
                size_bytes: 32 * 1024,
                assoc: 8,
                latency: 16,
            },
            l3: asap_sim::CacheParams {
                size_bytes: 128 * 1024,
                assoc: 16,
                latency: 55,
            },
            ..GracemontConfig::scaled()
        };
        let mut tri = gen::road_network(40_000, 9);
        for v in &mut tri.vals {
            *v = 1.0;
        }
        tri.binary = false;
        let pf = PrefetcherConfig::optimized_spmv();
        let asap = run_spmv(
            &tri,
            "t",
            "g",
            true,
            Variant::Asap { distance: 45 },
            pf,
            "o",
            cfg,
        )
        .unwrap();
        let aj = run_spmv(
            &tri,
            "t",
            "g",
            true,
            Variant::AinsworthJones { distance: 45 },
            pf,
            "o",
            cfg,
        )
        .unwrap();
        let measured = asap.throughput / aj.throughput;
        let predicted = predict_asap_over_aj(&tri, 45);
        assert!(
            measured > 1.2,
            "short rows must show an advantage: {measured:.2}"
        );
        // Same side of 1.0 and within a loose factor.
        assert!(
            predicted > 1.2 && (predicted / measured) < 3.0 && (measured / predicted) < 3.0,
            "predicted {predicted:.2} vs measured {measured:.2}"
        );
    }
}
