//! A dependency-free worker pool for matrix-level parallelism.
//!
//! Every figure sweep is embarrassingly parallel across matrices: each
//! (matrix, variant, prefetcher) cell simulates independently and only
//! the printed table needs the original order. [`parallel_map`] provides
//! exactly that — `std::thread::scope` workers claiming indices off an
//! atomic counter, writing results into their input's slot — with no
//! channels, no rayon, no allocation beyond the result vector.
//!
//! Composition with the simulator's own multi-core mode (Figure 12) is
//! the subtle part: `asap_sim::run_parallel` spawns one OS thread per
//! simulated core and spin-synchronizes their clocks. Nesting that inside
//! a matrix-level worker oversubscribes the host and deadlock-prone
//! spinners crawl. The pool therefore marks its workers with a
//! thread-local flag ([`in_worker`]); [`matrix_threads`] collapses to 1
//! whenever the per-matrix simulation itself is multi-threaded, and the
//! bench runner refuses the remaining misuse with a typed error.

use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on a [`parallel_map`] worker thread (including nested calls on
/// that thread). The bench runner uses this to reject simulated-core
/// parallelism from inside a matrix-level worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Matrix-level worker count: the `ASAP_BENCH_THREADS` environment
/// variable when set (clamped to at least 1), otherwise the machine's
/// available parallelism. `ASAP_BENCH_THREADS=1` forces serial sweeps.
pub fn auto_threads() -> usize {
    if let Ok(v) = std::env::var("ASAP_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Thread budget for a matrix sweep whose per-matrix simulation spawns
/// `sim_threads` simulated cores. Multi-core simulations keep the sweep
/// serial (the cores already use the host's parallelism, and their clock
/// synchronization must not share cores with other work); single-core
/// simulations sweep with [`auto_threads`] workers.
pub fn matrix_threads(sim_threads: usize) -> usize {
    if sim_threads > 1 || in_worker() {
        1
    } else {
        auto_threads()
    }
}

/// Apply `f` to every item on up to `threads` worker threads, returning
/// the results in input order. `f` receives `(index, item)`. With one
/// thread (or zero/one items) everything runs on the calling thread and
/// no workers are marked.
///
/// A panicking `f` propagates the panic to the caller after the scope
/// joins — same behaviour as the serial loop it replaces.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Each index is claimed exactly once, so the lock is
                    // uncontended; a poisoned slot means another worker
                    // panicked mid-item and the scope is unwinding anyway.
                    let item = match slots[i].lock() {
                        Ok(mut s) => s.0.take(),
                        Err(_) => None,
                    };
                    let Some(item) = item else { continue };
                    let r = f(i, item);
                    if let Ok(mut s) = slots[i].lock() {
                        s.1 = Some(r);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .1
                .expect("worker pool completed every claimed item")
        })
        .collect()
}

/// A job that panicked on every attempt, converted to data instead of
/// unwinding through the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Input-order index of the failed item.
    pub index: usize,
    /// Human-readable identity of the item (e.g. the matrix name) for
    /// skip reports; `"item N"` when the caller provided no labels.
    pub label: String,
    /// The final attempt's panic payload, rendered as a string.
    pub message: String,
    /// How many attempts were made (always `max_attempts`).
    pub attempts: usize,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (index {}) panicked on all {} attempt(s): {}",
            self.label, self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for JobFailure {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Capped exponential backoff before retry `attempt` (1-based): 10ms,
/// 20ms, 40ms, ... capped at 200ms. Transient failures (memory pressure,
/// poisoned process-global state healing) get breathing room; permanent
/// ones only cost a bounded delay.
fn backoff_delay(attempt: usize) -> Duration {
    let ms = 10u64.saturating_mul(1u64 << attempt.min(6).saturating_sub(1));
    Duration::from_millis(ms.min(200))
}

/// Crash-isolated [`parallel_map`]: each item's closure runs under
/// `catch_unwind`, so one poisoned matrix (or a bug its shape tickles)
/// yields an `Err(JobFailure)` in that item's slot instead of tearing
/// down the whole sweep. A panicking item is retried up to
/// `max_attempts` times with capped exponential backoff; items are
/// passed by reference so every attempt sees the same input.
///
/// Output order matches input order, exactly as in [`parallel_map`].
pub fn parallel_map_isolated<T, R, F>(
    items: Vec<T>,
    threads: usize,
    max_attempts: usize,
    f: F,
) -> Vec<Result<R, JobFailure>>
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_isolated_labeled(items, threads, max_attempts, |_, i| format!("item {i}"), f)
}

/// As [`parallel_map_isolated`], with a caller-supplied label per item
/// (the matrix name in figure sweeps). The label travels into any
/// [`JobFailure`] and into the `pool.job` span, so skip reports and
/// traces name the work, not just its index. Retries and terminal
/// failures are counted in the `asap-obs` registry (`pool.retries`,
/// `pool.job_failures`).
pub fn parallel_map_isolated_labeled<T, R, L, F>(
    items: Vec<T>,
    threads: usize,
    max_attempts: usize,
    label: L,
    f: F,
) -> Vec<Result<R, JobFailure>>
where
    T: Send + Sync,
    R: Send,
    L: Fn(&T, usize) -> String + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let max_attempts = max_attempts.max(1);
    let run_one = |i: usize, item: &T| -> Result<R, JobFailure> {
        let span = asap_obs::span_with("pool.job", || vec![("label", label(item, i))]);
        let mut last = String::new();
        for attempt in 1..=max_attempts {
            if attempt > 1 {
                std::thread::sleep(backoff_delay(attempt - 1));
                asap_obs::counter_inc("pool.retries");
            }
            match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                Ok(r) => {
                    if attempt > 1 {
                        span.attr("recovered_on_attempt", attempt);
                    }
                    return Ok(r);
                }
                Err(payload) => last = panic_message(&*payload),
            }
        }
        asap_obs::counter_inc("pool.job_failures");
        span.attr("failed_after", max_attempts);
        Err(JobFailure {
            index: i,
            label: label(item, i),
            message: last,
            attempts: max_attempts,
        })
    };
    let items_ref = &items;
    parallel_map((0..items.len()).collect(), threads, move |_, i| {
        run_one(i, &items_ref[i])
    })
}

/// Render the end-of-sweep skip report for failures collected by an
/// isolated sweep: one line per skipped item with its label and attempt
/// count. Empty string when nothing was skipped.
pub fn skip_report(failures: &[JobFailure]) -> String {
    if failures.is_empty() {
        return String::new();
    }
    let mut s = format!(
        "skipped {} item(s) after crash isolation:\n",
        failures.len()
    );
    for f in failures {
        s.push_str(&format!(
            "  {} — {} attempt(s), last panic: {}\n",
            f.label, f.attempts, f.message
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_threads() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items, 7, |i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let a = parallel_map((0..17).collect::<Vec<i64>>(), 1, |_, x| x * x);
        let b = parallel_map((0..17).collect::<Vec<i64>>(), 4, |_, x| x * x);
        assert_eq!(a, b);
    }

    #[test]
    fn workers_are_marked_and_caller_is_not() {
        assert!(!in_worker());
        let flags = parallel_map(vec![(); 8], 4, |_, ()| in_worker());
        assert!(flags.iter().all(|&w| w), "all items ran on marked workers");
        assert!(!in_worker(), "the calling thread stays unmarked");
    }

    #[test]
    fn matrix_threads_collapses_under_sim_parallelism() {
        assert_eq!(matrix_threads(4), 1);
        assert!(matrix_threads(1) >= 1);
        // Inside a worker, nested sweeps stay serial regardless.
        let nested = parallel_map(vec![(); 2], 2, |_, ()| matrix_threads(1));
        assert_eq!(nested, vec![1, 1]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u8> = parallel_map(Vec::<u8>::new(), 8, |_, x| x);
        assert!(none.is_empty());
        assert_eq!(parallel_map(vec![9], 8, |_, x| x + 1), vec![10]);
    }

    #[test]
    fn isolated_panic_becomes_a_typed_failure() {
        let out = parallel_map_isolated((0..8).collect::<Vec<i32>>(), 4, 2, |_, &x| {
            if x == 3 {
                panic!("item {x} is cursed");
            }
            x * 10
        });
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 3);
                assert_eq!(e.attempts, 2);
                assert!(e.message.contains("cursed"), "{e}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i32 * 10, "order preserved");
            }
        }
    }

    #[test]
    fn labeled_failures_carry_label_and_attempts_into_the_report() {
        let out = parallel_map_isolated_labeled(
            vec!["good", "bad"],
            1,
            2,
            |item, _| format!("matrix:{item}"),
            |_, &item| {
                if item == "bad" {
                    panic!("shape tickles a bug");
                }
                item.len()
            },
        );
        assert_eq!(*out[0].as_ref().unwrap(), 4);
        let e = out[1].as_ref().unwrap_err();
        assert_eq!(e.label, "matrix:bad");
        assert_eq!(e.attempts, 2);
        assert!(e.to_string().contains("matrix:bad"), "{e}");
        let report = skip_report(std::slice::from_ref(e));
        assert!(report.contains("skipped 1 item(s)"), "{report}");
        assert!(report.contains("matrix:bad — 2 attempt(s)"), "{report}");
        assert!(report.contains("shape tickles a bug"), "{report}");
        assert_eq!(skip_report(&[]), "");
    }

    #[test]
    fn flaky_item_succeeds_on_retry() {
        let tries = AtomicUsize::new(0);
        let out = parallel_map_isolated(vec![()], 1, 3, |_, ()| {
            if tries.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            42
        });
        assert_eq!(out, vec![Ok(42)]);
        assert_eq!(tries.load(Ordering::SeqCst), 3, "two failures then success");
    }

    #[test]
    fn backoff_is_capped() {
        assert_eq!(backoff_delay(1), Duration::from_millis(10));
        assert_eq!(backoff_delay(2), Duration::from_millis(20));
        assert!(backoff_delay(50) <= Duration::from_millis(200));
    }
}
