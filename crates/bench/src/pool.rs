//! A dependency-free worker pool for matrix-level parallelism.
//!
//! Every figure sweep is embarrassingly parallel across matrices: each
//! (matrix, variant, prefetcher) cell simulates independently and only
//! the printed table needs the original order. [`parallel_map`] provides
//! exactly that — `std::thread::scope` workers claiming indices off an
//! atomic counter, writing results into their input's slot — with no
//! channels, no rayon, no allocation beyond the result vector.
//!
//! Composition with the simulator's own multi-core mode (Figure 12) is
//! the subtle part: `asap_sim::run_parallel` spawns one OS thread per
//! simulated core and spin-synchronizes their clocks. Nesting that inside
//! a matrix-level worker oversubscribes the host and deadlock-prone
//! spinners crawl. The pool therefore marks its workers with a
//! thread-local flag ([`in_worker`]); [`matrix_threads`] collapses to 1
//! whenever the per-matrix simulation itself is multi-threaded, and the
//! bench runner refuses the remaining misuse with a typed error.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on a [`parallel_map`] worker thread (including nested calls on
/// that thread). The bench runner uses this to reject simulated-core
/// parallelism from inside a matrix-level worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Matrix-level worker count: the `ASAP_BENCH_THREADS` environment
/// variable when set (clamped to at least 1), otherwise the machine's
/// available parallelism. `ASAP_BENCH_THREADS=1` forces serial sweeps.
pub fn auto_threads() -> usize {
    if let Ok(v) = std::env::var("ASAP_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Thread budget for a matrix sweep whose per-matrix simulation spawns
/// `sim_threads` simulated cores. Multi-core simulations keep the sweep
/// serial (the cores already use the host's parallelism, and their clock
/// synchronization must not share cores with other work); single-core
/// simulations sweep with [`auto_threads`] workers.
pub fn matrix_threads(sim_threads: usize) -> usize {
    if sim_threads > 1 || in_worker() {
        1
    } else {
        auto_threads()
    }
}

/// Apply `f` to every item on up to `threads` worker threads, returning
/// the results in input order. `f` receives `(index, item)`. With one
/// thread (or zero/one items) everything runs on the calling thread and
/// no workers are marked.
///
/// A panicking `f` propagates the panic to the caller after the scope
/// joins — same behaviour as the serial loop it replaces.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| {
                IN_WORKER.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Each index is claimed exactly once, so the lock is
                    // uncontended; a poisoned slot means another worker
                    // panicked mid-item and the scope is unwinding anyway.
                    let item = match slots[i].lock() {
                        Ok(mut s) => s.0.take(),
                        Err(_) => None,
                    };
                    let Some(item) = item else { continue };
                    let r = f(i, item);
                    if let Ok(mut s) = slots[i].lock() {
                        s.1 = Some(r);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .1
                .expect("worker pool completed every claimed item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_threads() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items, 7, |i, x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel() {
        let a = parallel_map((0..17).collect::<Vec<i64>>(), 1, |_, x| x * x);
        let b = parallel_map((0..17).collect::<Vec<i64>>(), 4, |_, x| x * x);
        assert_eq!(a, b);
    }

    #[test]
    fn workers_are_marked_and_caller_is_not() {
        assert!(!in_worker());
        let flags = parallel_map(vec![(); 8], 4, |_, ()| in_worker());
        assert!(flags.iter().all(|&w| w), "all items ran on marked workers");
        assert!(!in_worker(), "the calling thread stays unmarked");
    }

    #[test]
    fn matrix_threads_collapses_under_sim_parallelism() {
        assert_eq!(matrix_threads(4), 1);
        assert!(matrix_threads(1) >= 1);
        // Inside a worker, nested sweeps stay serial regardless.
        let nested = parallel_map(vec![(); 2], 2, |_, ()| matrix_threads(1));
        assert_eq!(nested, vec![1, 1]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u8> = parallel_map(Vec::<u8>::new(), 8, |_, x| x);
        assert!(none.is_empty());
        assert_eq!(parallel_map(vec![9], 8, |_, x| x + 1), vec![10]);
    }
}
