//! Small formatting helpers for the fig binaries' textual output.

/// Fixed-precision float for tables.
pub fn fmt_f64(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Render rows as a markdown table with a header.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str(&format!("| {} |\n", header.join(" | ")));
    s.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for r in rows {
        s.push_str(&format!("| {} |\n", r.join(" | ")));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("|---|---|"));
        assert!(t.contains("| 3 | 4 |"));
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
    }
}
