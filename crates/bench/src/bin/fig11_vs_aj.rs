//! Figure 11: SpMV EWS across matrix groups comparing ASaP against the
//! Ainsworth & Jones low-level pass, each with default and optimized
//! hardware-prefetcher settings, all relative to the same baseline.
//!
//! Paper shape: ASaP ~1.38x over A&J on the Selected (unstructured)
//! aggregate — short inner loops are where the loop-bound clamp loses
//! coverage; the optimized prefetcher configuration helps A&J only
//! marginally (~1.02x).

use asap_bench::{
    cell_key, harmonic_mean, matrix_threads, parallel_map, run_spmv_budgeted, ExperimentResult,
    Options, Variant, PAPER_DISTANCE,
};
use asap_ir::AsapError;
use asap_matrices::{synthetic_collection, UNSTRUCTURED_GROUPS};
use asap_sim::{GracemontConfig, PrefetcherConfig};
use std::collections::BTreeMap;

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let opts = Options::from_args();
    opts.init_trace();
    let ckpt = opts
        .checkpoint("fig11")
        .map_err(|e| AsapError::io(e.to_string()))?;
    let ckpt = &ckpt;
    // Built once: fuel bounds each cell (one meter per run), the
    // deadline — an absolute instant — bounds the whole sweep.
    let budget = opts.budget();
    let budget = &budget;
    let cfg = GracemontConfig::scaled();
    let configs = [
        (
            "baseline",
            Variant::Baseline,
            PrefetcherConfig::optimized_spmv(),
        ),
        (
            "asap",
            Variant::Asap {
                distance: PAPER_DISTANCE,
            },
            PrefetcherConfig::optimized_spmv(),
        ),
        (
            "asap-default",
            Variant::Asap {
                distance: PAPER_DISTANCE,
            },
            PrefetcherConfig::hw_default(),
        ),
        (
            "aj",
            Variant::AinsworthJones {
                distance: PAPER_DISTANCE,
            },
            PrefetcherConfig::optimized_spmv(),
        ),
        (
            "aj-default",
            Variant::AinsworthJones {
                distance: PAPER_DISTANCE,
            },
            PrefetcherConfig::hw_default(),
        ),
    ];

    // All five configs of one matrix run on the same pool worker; the
    // throughput columns are reassembled in collection order.
    let per_matrix = parallel_map(
        synthetic_collection(opts.size),
        matrix_threads(1),
        |_, m| {
            let tri = m.materialize();
            let mut rows = Vec::with_capacity(configs.len());
            for (label, v, pf) in &configs {
                rows.push(ckpt.run_cell(
                    &cell_key(&m.name, "spmv", v.label(), label, 1),
                    || {
                        run_spmv_budgeted(
                            &tri,
                            &m.name,
                            &m.group,
                            m.unstructured,
                            *v,
                            *pf,
                            label,
                            cfg,
                            budget,
                        )
                    },
                )?);
            }
            Ok::<_, AsapError>((m, rows))
        },
    );

    let mut thr: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut groups: Vec<(String, bool)> = Vec::new();
    let mut results: Vec<ExperimentResult> = Vec::new();
    for row in per_matrix {
        let (m, rows) = row?;
        groups.push((m.group.clone(), m.unstructured));
        for ((label, _, _), r) in configs.iter().zip(rows) {
            thr.entry(label).or_default().push(r.throughput);
            results.push(r);
        }
    }

    println!("# Figure 11: SpMV EWS by group, ASaP vs Ainsworth&Jones (relative to baseline)");
    println!(
        "{:<12} {:>8} {:>13} {:>8} {:>11} {:>9}",
        "group", "asap", "asap-default", "aj", "aj-default", "asap/aj"
    );
    let mut names: Vec<String> = UNSTRUCTURED_GROUPS.iter().map(|s| s.to_string()).collect();
    names.push("Selected".into());
    names.push("Others".into());
    for g in &names {
        let pick = |i: usize| match g.as_str() {
            "Selected" => groups[i].1,
            "Others" => !groups[i].1,
            name => groups[i].0 == name,
        };
        let hm = |label: &str| -> Option<f64> {
            let v: Vec<f64> = thr[label]
                .iter()
                .enumerate()
                .filter(|(i, _)| pick(*i))
                .map(|(_, &t)| t)
                .collect();
            if v.is_empty() {
                None
            } else {
                Some(harmonic_mean(&v))
            }
        };
        match (
            hm("baseline"),
            hm("asap"),
            hm("asap-default"),
            hm("aj"),
            hm("aj-default"),
        ) {
            (Some(b), Some(a), Some(ad), Some(j), Some(jd)) => {
                println!(
                    "{:<12} {:>8.3} {:>13.3} {:>8.3} {:>11.3} {:>9.3}",
                    g,
                    a / b,
                    ad / b,
                    j / b,
                    jd / b,
                    a / j
                );
            }
            _ => println!("{g:<12} {:>8}", "-"),
        }
    }
    println!();
    println!("paper reference: Selected asap/aj ~1.38; optimized helps aj only ~1.02x");
    opts.save("fig11", &results)?;
    opts.finish_trace("fig11")?;
    Ok(())
}
