//! Figure 8: SpMM speedup (ASaP vs baseline) versus baseline L2 MPKI,
//! single-threaded, 8 dense f64 columns (one cache line per row of C).
//!
//! Paper shape: linear relationship with a much steeper slope than SpMV's
//! (outer-loop prefetching amortizes the instruction overhead), with the
//! regression line starting near 1.0.

use asap_bench::{
    cell_key, linear_fit, matrix_threads, parallel_map_isolated_labeled, skip_report, JobFailure,
    Options, Variant, PAPER_DISTANCE, SPMM_COLS_F64,
};
use asap_ir::AsapError;
use asap_matrices::spmm_collection;
use asap_sim::{GracemontConfig, PrefetcherConfig};

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let opts = Options::from_args();
    opts.init_trace();
    let ckpt = opts
        .checkpoint("fig8")
        .map_err(|e| AsapError::io(e.to_string()))?;
    let ckpt = &ckpt;
    // Built once: fuel bounds each cell (one meter per run), the
    // deadline — an absolute instant — bounds the whole sweep.
    let budget = opts.budget();
    let budget = &budget;
    let cfg = GracemontConfig::scaled();
    // Table 2: the L2 AMP stays on for SpMM (2D-stride friendly).
    let pf = PrefetcherConfig::optimized_spmm();
    let mut results = Vec::new();
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    let mut skipped: Vec<JobFailure> = Vec::new();

    println!("# Figure 8: SpMM speedup (ASaP/baseline) vs baseline L2 MPKI");
    println!(
        "{:<24} {:>10} {:>10} {:>8}",
        "matrix", "mpki", "speedup", "nnz(M)"
    );
    // Per-matrix baseline/ASaP pairs simulate on crash-isolated pool
    // workers keyed by the matrix name; one poisoned matrix becomes a
    // skip-report line instead of killing the sweep. The table prints in
    // collection order afterwards.
    let per_matrix = parallel_map_isolated_labeled(
        spmm_collection(opts.size),
        matrix_threads(1),
        2,
        |m, _| m.name.clone(),
        |_, m| {
            let tri = {
                let _s = asap_obs::span_with("parse.matrix", || vec![("matrix", m.name.clone())]);
                m.materialize()
            };
            let run = || -> Result<_, AsapError> {
                let base = ckpt.run_cell(
                    &cell_key(&m.name, "spmm", Variant::Baseline.label(), "optimized", 1),
                    || run_spmm_checked(&tri, m, Variant::Baseline, pf, cfg, budget),
                )?;
                let asap_v = Variant::Asap {
                    distance: PAPER_DISTANCE,
                };
                let asap = ckpt.run_cell(
                    &cell_key(&m.name, "spmm", asap_v.label(), "optimized", 1),
                    || run_spmm_checked(&tri, m, asap_v, pf, cfg, budget),
                )?;
                Ok((base, asap))
            };
            (m.name.clone(), run())
        },
    );
    for (i, row) in per_matrix.into_iter().enumerate() {
        let (name, outcome) = match row {
            Ok(pair) => pair,
            Err(jf) => {
                skipped.push(jf);
                continue;
            }
        };
        let (base, asap) = match outcome {
            Ok(pair) => pair,
            Err(e) => {
                skipped.push(JobFailure {
                    index: i,
                    label: name,
                    message: e.to_string(),
                    attempts: 1,
                });
                continue;
            }
        };
        let speedup = asap.throughput / base.throughput;
        println!(
            "{:<24} {:>10.2} {:>10.3} {:>8.2}",
            name,
            base.l2_mpki,
            speedup,
            base.nnz as f64 / 1e6
        );
        xs.push(base.l2_mpki);
        ys.push(speedup);
        results.push(base);
        results.push(asap);
    }

    println!();
    if xs.len() >= 2 {
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        println!("linear fit: y = {slope:.4}x + {intercept:.3}  (R^2 = {r2:.3})");
        println!("paper reference: y = 0.706x + 0.995 (R^2 = 0.776); slope >> SpMV's");
    } else {
        println!("too few matrices completed for a linear fit");
    }
    if !skipped.is_empty() {
        eprint!("{}", skip_report(&skipped));
    }
    opts.save("fig8", &results)?;
    opts.finish_trace("fig8")?;
    Ok(())
}

fn run_spmm_checked(
    tri: &asap_matrices::Triplets,
    m: &asap_matrices::MatrixSpec,
    variant: Variant,
    pf: PrefetcherConfig,
    cfg: GracemontConfig,
    budget: &asap_ir::Budget,
) -> Result<asap_bench::ExperimentResult, AsapError> {
    asap_bench::run_spmm_budgeted(
        tri,
        &m.name,
        &m.group,
        m.unstructured,
        SPMM_COLS_F64,
        variant,
        pf,
        "optimized",
        cfg,
        budget,
    )
}
