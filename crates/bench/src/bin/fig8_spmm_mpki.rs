//! Figure 8: SpMM speedup (ASaP vs baseline) versus baseline L2 MPKI,
//! single-threaded, 8 dense f64 columns (one cache line per row of C).
//!
//! Paper shape: linear relationship with a much steeper slope than SpMV's
//! (outer-loop prefetching amortizes the instruction overhead), with the
//! regression line starting near 1.0.

use asap_bench::{
    cell_key, linear_fit, matrix_threads, parallel_map, run_spmm_budgeted, Options, Variant,
    PAPER_DISTANCE, SPMM_COLS_F64,
};
use asap_ir::AsapError;
use asap_matrices::spmm_collection;
use asap_sim::{GracemontConfig, PrefetcherConfig};

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let opts = Options::from_args();
    let ckpt = opts
        .checkpoint("fig8")
        .map_err(|e| AsapError::io(e.to_string()))?;
    let ckpt = &ckpt;
    // Built once: fuel bounds each cell (one meter per run), the
    // deadline — an absolute instant — bounds the whole sweep.
    let budget = opts.budget();
    let budget = &budget;
    let cfg = GracemontConfig::scaled();
    // Table 2: the L2 AMP stays on for SpMM (2D-stride friendly).
    let pf = PrefetcherConfig::optimized_spmm();
    let mut results = Vec::new();
    let (mut xs, mut ys) = (Vec::new(), Vec::new());

    println!("# Figure 8: SpMM speedup (ASaP/baseline) vs baseline L2 MPKI");
    println!(
        "{:<24} {:>10} {:>10} {:>8}",
        "matrix", "mpki", "speedup", "nnz(M)"
    );
    // Per-matrix baseline/ASaP pairs simulate on pool workers; the table
    // prints in collection order afterwards.
    let per_matrix = parallel_map(spmm_collection(opts.size), matrix_threads(1), |_, m| {
        let tri = m.materialize();
        let base = ckpt.run_cell(
            &cell_key(&m.name, "spmm", Variant::Baseline.label(), "optimized", 1),
            || {
                run_spmm_budgeted(
                    &tri,
                    &m.name,
                    &m.group,
                    m.unstructured,
                    SPMM_COLS_F64,
                    Variant::Baseline,
                    pf,
                    "optimized",
                    cfg,
                    budget,
                )
            },
        )?;
        let asap_v = Variant::Asap {
            distance: PAPER_DISTANCE,
        };
        let asap = ckpt.run_cell(
            &cell_key(&m.name, "spmm", asap_v.label(), "optimized", 1),
            || {
                run_spmm_budgeted(
                    &tri,
                    &m.name,
                    &m.group,
                    m.unstructured,
                    SPMM_COLS_F64,
                    asap_v,
                    pf,
                    "optimized",
                    cfg,
                    budget,
                )
            },
        )?;
        Ok::<_, AsapError>((m, base, asap))
    });
    for row in per_matrix {
        let (m, base, asap) = row?;
        let speedup = asap.throughput / base.throughput;
        println!(
            "{:<24} {:>10.2} {:>10.3} {:>8.2}",
            m.name,
            base.l2_mpki,
            speedup,
            base.nnz as f64 / 1e6
        );
        xs.push(base.l2_mpki);
        ys.push(speedup);
        results.push(base);
        results.push(asap);
    }

    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    println!();
    println!("linear fit: y = {slope:.4}x + {intercept:.3}  (R^2 = {r2:.3})");
    println!("paper reference: y = 0.706x + 0.995 (R^2 = 0.776); slope >> SpMV's");
    opts.save(&results)?;
    Ok(())
}
