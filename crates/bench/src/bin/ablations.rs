//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Prefetch distance sweep** — the paper fixes 45 (Section 4.3) and
//!    leaves tuning as future work; the sweep shows the flat-top curve
//!    that makes 45 a safe default.
//! 2. **Step 1 omission** — prefetching the crd stream itself; the paper
//!    reports omitting it "consistently degraded performance"
//!    (Section 3.2.1).
//! 3. **Locality hint** — locality<2> (L2) vs locality<3> (L1).
//! 4. **Page size** — the methodology's huge-page setup (Section 4.4)
//!    vs 4 KiB base pages.

use asap_bench::Options;
use asap_core::{compile_with_width, AsapConfig, PrefetchStrategy};
use asap_ir::AsapError;
use asap_matrices::gen;
use asap_sim::{GracemontConfig, Machine, PrefetcherConfig, TlbConfig};
use asap_sparsifier::KernelSpec;
use asap_tensor::{Format, SparseTensor, ValueKind};

fn simulate(
    sparse: &SparseTensor,
    x: &[f64],
    cfgp: AsapConfig,
    machine_cfg: GracemontConfig,
) -> Result<u64, AsapError> {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let ck = compile_with_width(
        &spec,
        sparse.format(),
        sparse.index_width(),
        &PrefetchStrategy::Asap(cfgp),
    )?;
    let mut m = Machine::new(machine_cfg, PrefetcherConfig::optimized_spmv());
    asap_core::run_spmv_f64_with(&ck, sparse, x, &mut m)?;
    Ok(m.counters().cycles)
}

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let opts = Options::from_args();
    opts.init_trace();
    let n = match opts.size {
        asap_matrices::SizeClass::Tiny => 8_000,
        asap_matrices::SizeClass::Small => 40_000,
        asap_matrices::SizeClass::Full => 300_000,
    };
    let tri = gen::erdos_renyi(n, 8, 51);
    let sparse = SparseTensor::try_from_coo(&tri.try_to_coo_f64()?, Format::csr())?;
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 9) as f64).collect();
    let cfg = GracemontConfig::scaled();
    let nnz = sparse.nnz() as f64;
    let thrpt = |cycles: u64| nnz / (cfg.cycles_to_seconds(cycles) * 1e3);

    println!("# Ablation 1: prefetch distance sweep (SpMV, uniform random, n={n})");
    println!("{:>9} {:>12}", "distance", "nnz/ms");
    for d in [1, 2, 4, 8, 16, 32, 45, 64, 96, 128, 256] {
        let c = simulate(&sparse, &x, AsapConfig::with_distance(d), cfg)?;
        println!("{d:>9} {:>12.0}", thrpt(c));
    }

    println!("\n# Ablation 2: Step 1 (crd-stream prefetch) omission");
    for (label, step1) in [("with step 1", true), ("without step 1", false)] {
        let c = simulate(
            &sparse,
            &x,
            AsapConfig {
                prefetch_crd_stream: step1,
                ..AsapConfig::paper()
            },
            cfg,
        )?;
        println!("{label:<16} {:>12.0} nnz/ms", thrpt(c));
    }
    println!("paper: omitting Step 1 consistently degraded performance");

    println!("\n# Ablation 3: locality hint (fill level of Step 3 prefetches)");
    for loc in [0u8, 1, 2, 3] {
        let c = simulate(
            &sparse,
            &x,
            AsapConfig {
                locality: loc,
                ..AsapConfig::paper()
            },
            cfg,
        )?;
        println!("locality<{loc}>      {:>12.0} nnz/ms", thrpt(c));
    }
    println!("paper uses locality<2>");

    println!("\n# Ablation 4: page size (TLB pressure, Section 4.4 methodology)");
    for (label, tlb) in [
        ("2 MB huge pages", TlbConfig::huge_pages()),
        ("4 KiB base pages", TlbConfig::base_pages()),
        ("translation off", TlbConfig::disabled()),
    ] {
        let c = simulate(
            &sparse,
            &x,
            AsapConfig::paper(),
            GracemontConfig { tlb, ..cfg },
        )?;
        println!("{label:<18} {:>12.0} nnz/ms", thrpt(c));
    }
    println!("paper: huge pages for all operands to curb TLB pressure from irregular accesses");
    opts.finish_trace("ablations")?;
    Ok(())
}
