//! Figure 12: cache-aware roofline for multi-threaded SpMV on the
//! GAP-twitter-like matrix — baseline vs ASaP at 1..8 threads.
//!
//! For each point we report arithmetic intensity (FLOP per DRAM byte) and
//! performance (GFLOP/s), plus the machine's rooflines (peak compute and
//! DRAM bandwidth). Paper shape: ASaP above the baseline at every thread
//! count, peak relative gain at ~3 threads, with a slight leftward shift
//! in intensity from the extra prefetch-issued memory traffic.

use asap_bench::{run_spmv_threads, ExperimentResult, Options, Variant, PAPER_DISTANCE};
use asap_ir::AsapError;
use asap_matrices::{synthetic_collection, GenSpec};
use asap_sim::{GracemontConfig, PrefetcherConfig};

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let opts = Options::from_args();
    opts.init_trace();
    let cfg = GracemontConfig::scaled();
    let pf = PrefetcherConfig::optimized_spmv();

    // The GAP/twitter-like entry of the collection.
    // invariant: every size class of the synthetic collection includes
    // the GAP/twitter-like entry (collection.rs constructs it statically).
    let m = synthetic_collection(opts.size)
        .into_iter()
        .find(|m| m.name == "GAP/twitter-like")
        .expect("collection has the twitter-like matrix");
    assert!(matches!(m.gen, GenSpec::Rmat { .. }));
    let tri = m.materialize();

    let peak_gflops = cfg.freq_hz as f64 * cfg.ipc_base as f64 / 1e9;
    let peak_bw = cfg.freq_hz as f64 * 64.0 / cfg.dram_line_interval as f64 / 1e9;
    println!(
        "# Figure 12: roofline, SpMV on {} ({} nnz)",
        m.name,
        tri.nnz()
    );
    println!("peak compute: {peak_gflops:.1} GFLOP/s; DRAM bandwidth: {peak_bw:.1} GB/s");
    println!(
        "{:<9} {:>8} {:>12} {:>10} {:>12} {:>10}",
        "variant", "threads", "AI(F/B)", "GFLOP/s", "time(ms)", "speedup"
    );

    // Deliberately serial: each run_spmv_threads call already spawns one
    // host thread per simulated core with spin-synchronized clocks, so
    // matrix-level pool workers must not wrap it (run_prepared_parallel
    // rejects that nesting with a typed error).
    let mut results: Vec<ExperimentResult> = Vec::new();
    let mut base_gflops = [0.0f64; 9];
    for v in [
        Variant::Baseline,
        Variant::Asap {
            distance: PAPER_DISTANCE,
        },
    ] {
        // `threads` doubles as thread count and speedup-table slot.
        #[allow(clippy::needless_range_loop)]
        for threads in 1..=8usize {
            let r = run_spmv_threads(
                &tri,
                &m.name,
                &m.group,
                true,
                v,
                pf,
                "optimized",
                cfg,
                threads,
            )?;
            let flops = 2.0 * r.nnz as f64;
            let secs = cfg.cycles_to_seconds(r.cycles);
            let gflops = flops / secs / 1e9;
            let ai = flops / r.dram_bytes as f64;
            let speedup = match v {
                Variant::Baseline => {
                    base_gflops[threads] = gflops;
                    1.0
                }
                _ => gflops / base_gflops[threads],
            };
            println!(
                "{:<9} {:>8} {:>12.4} {:>10.3} {:>12.2} {:>10.3}",
                r.variant,
                threads,
                ai,
                gflops,
                secs * 1e3,
                speedup
            );
            results.push(r);
        }
    }
    println!();
    println!("paper reference: ASaP above baseline throughout; peak gain (~28%) at 3 threads;");
    println!("ASaP's AI slightly left of baseline's (extra prefetch traffic).");
    opts.save("fig12", &results)?;
    opts.finish_trace("fig12")?;
    Ok(())
}
