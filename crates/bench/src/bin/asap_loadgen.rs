//! `asap_loadgen` — open-loop load harness for `asap-serve`.
//!
//! Drives a fixed arrival rate against a running server (or one it
//! spawns in-process with `--spawn`) and reports throughput, response
//! mix, and latency percentiles to `BENCH_serve.json`.
//!
//! ```sh
//! asap_loadgen --spawn --rps 800 --duration-s 5
//! asap_loadgen --addr 127.0.0.1:7070 --matrix gen:er:4096:4 --rps 500
//! asap_loadgen --spawn --tenants 3 --zipf 1.1 --rps 600 --duration-s 5
//! asap_loadgen --spawn --tenants 2 --hostile --store-ab --duration-s 4
//! ```
//!
//! Open-loop means coordination-omission-aware: request *i* has a
//! scheduled arrival of `start + i/rps`, and its latency is measured
//! from that scheduled instant — a server that falls behind shows the
//! queueing delay in the percentiles instead of hiding it by slowing
//! the generator down. Every 200 response must carry the same checksum
//! (the requests are identical); a mismatch is a correctness failure,
//! not a performance number.
//!
//! Multi-tenant mode (`--tenants N`) tags every request with an
//! `X-Asap-Tenant` header (`t0..t{N-1}`) and draws its matrix from a
//! pool of distinct inline MatrixMarket payloads, zipf-distributed by
//! `--zipf S` (0 = uniform) — the reuse skew a resident matrix store
//! lives or dies on. Tallies, throughput, and (CO-aware) p99 are
//! reported per tenant. `--hostile` gives tenant `t0` a 10× request
//! share, turning the run into an isolation experiment: the strict gate
//! then checks the victims still clear `--victim-floor` ok/s and that
//! the server never answered 5xx. `--store-ab` (with `--spawn`) runs
//! the same closed-loop workload against two in-process servers — the
//! resident store enabled vs disabled — and reports the warm-throughput
//! ratio; the tenancy acceptance wants the hot store ≥ 2× the
//! re-parse-every-request path.
//!
//! Chaos mode (`--chaos SEED`) interposes the deterministic
//! `asap-fuzz` fault-injection proxy between the generator and the
//! server, so a schedule of delays, drips, truncations, corruptions,
//! and aborts hits every connection; `--retry` switches the generator
//! to the self-healing [`ResilientClient`] so BENCH_serve.json reports
//! *goodput* under faults — successful answers per second after
//! retries, not raw attempts.

use asap_fuzz::chaos_proxy::{ChaosConfig, ChaosProxy};
use asap_matrices::{gen, write_matrix_market, Rng64};
use asap_obs::{ObjWriter, STAGES, STAGE_COUNT};
use asap_serve::{
    exchange_with_headers, get, post, ResilientClient, RetryPolicy, ServeConfig, Server,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Share of the request stream the hostile tenant (`t0`) gets when
/// `--hostile` is on; every other tenant gets one share.
const HOSTILE_SHARES: usize = 10;

struct Args {
    addr: Option<String>,
    spawn: bool,
    rps: u64,
    duration_s: u64,
    threads: usize,
    warmup: usize,
    matrix: String,
    kernel: String,
    strategy: String,
    distance: usize,
    deadline_ms: u64,
    out: std::path::PathBuf,
    strict: bool,
    chaos: Option<u64>,
    retry: bool,
    tenants: usize,
    zipf: f64,
    pool: usize,
    hostile: bool,
    victim_floor: f64,
    store_ab: bool,
    seed: u64,
    latency_breakdown: bool,
    obs_ab: bool,
    reps: usize,
    out_set: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: asap_loadgen (--addr HOST:PORT | --spawn) [--rps N] [--duration-s S] \
         [--threads N] [--warmup N] [--matrix REF] [--kernel spmv|spmm] \
         [--strategy baseline|asap|aj] [--distance N] [--deadline-ms N] \
         [--out PATH] [--strict] [--chaos SEED] [--retry] \
         [--tenants N] [--zipf S] [--pool K] [--hostile] [--victim-floor OKPS] \
         [--store-ab] [--seed N] [--latency-breakdown] [--obs-ab] [--reps N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: None,
        spawn: false,
        rps: 600,
        duration_s: 5,
        threads: 8,
        warmup: 20,
        matrix: "gen:er:4096:4".to_string(),
        kernel: "spmv".to_string(),
        strategy: "asap".to_string(),
        distance: 45,
        deadline_ms: 5_000,
        out: std::path::PathBuf::from("BENCH_serve.json"),
        strict: false,
        chaos: None,
        retry: false,
        tenants: 0,
        zipf: 0.0,
        pool: 8,
        hostile: false,
        victim_floor: 0.0,
        store_ab: false,
        seed: 0x10ad,
        latency_breakdown: false,
        obs_ab: false,
        reps: 3,
        out_set: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => a.addr = Some(val()),
            "--spawn" => a.spawn = true,
            "--rps" => a.rps = val().parse().unwrap_or_else(|_| usage()),
            "--duration-s" => a.duration_s = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => a.threads = val().parse().unwrap_or_else(|_| usage()),
            "--warmup" => a.warmup = val().parse().unwrap_or_else(|_| usage()),
            "--matrix" => a.matrix = val(),
            "--kernel" => a.kernel = val(),
            "--strategy" => a.strategy = val(),
            "--distance" => a.distance = val().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => a.deadline_ms = val().parse().unwrap_or_else(|_| usage()),
            "--out" => {
                a.out = std::path::PathBuf::from(val());
                a.out_set = true;
            }
            "--strict" => a.strict = true,
            "--chaos" => a.chaos = Some(val().parse().unwrap_or_else(|_| usage())),
            "--retry" => a.retry = true,
            "--tenants" => a.tenants = val().parse().unwrap_or_else(|_| usage()),
            "--zipf" => a.zipf = val().parse().unwrap_or_else(|_| usage()),
            "--pool" => a.pool = val().parse().unwrap_or_else(|_| usage()),
            "--hostile" => a.hostile = true,
            "--victim-floor" => a.victim_floor = val().parse().unwrap_or_else(|_| usage()),
            "--store-ab" => a.store_ab = true,
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage()),
            "--latency-breakdown" => a.latency_breakdown = true,
            "--obs-ab" => a.obs_ab = true,
            "--reps" => a.reps = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if a.addr.is_none() && !a.spawn {
        usage();
    }
    if a.rps == 0 || a.duration_s == 0 || a.threads == 0 || a.reps == 0 {
        usage();
    }
    if a.store_ab && (!a.spawn || a.tenants == 0) {
        eprintln!("--store-ab needs --spawn and --tenants N (it compares two in-process servers)");
        std::process::exit(2);
    }
    if a.obs_ab && !a.spawn {
        eprintln!("--obs-ab needs --spawn (it compares two in-process servers)");
        std::process::exit(2);
    }
    if a.obs_ab && !a.out_set {
        a.out = std::path::PathBuf::from("BENCH_serve_obs.json");
    }
    if a.hostile && a.tenants < 2 {
        eprintln!("--hostile needs --tenants >= 2 (someone must be the victim)");
        std::process::exit(2);
    }
    if a.pool == 0 {
        a.pool = 1;
    }
    a
}

#[derive(Default)]
struct Tally {
    ok: u64,
    rejected: u64,
    deadline: u64,
    bad: u64,
    server_err: u64,
    transport: u64,
    latencies_ns: Vec<u64>,
    checksums: Vec<String>,
    /// Server-reported per-stage nanoseconds ([`STAGE_COUNT`] sample
    /// vectors), harvested from 200 bodies' `stage_ns` when
    /// `--latency-breakdown` is on; `None` keeps the parse off the
    /// default path.
    stage_ns: Option<Vec<Vec<u64>>>,
}

impl Tally {
    fn new(breakdown: bool) -> Tally {
        Tally {
            stage_ns: breakdown.then(|| vec![Vec::new(); STAGE_COUNT]),
            ..Tally::default()
        }
    }

    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.rejected += other.rejected;
        self.deadline += other.deadline;
        self.bad += other.bad;
        self.server_err += other.server_err;
        self.transport += other.transport;
        self.latencies_ns.extend(other.latencies_ns);
        for c in other.checksums {
            if !self.checksums.iter().any(|s| s == &c) {
                self.checksums.push(c);
            }
        }
        if let Some(theirs) = other.stage_ns {
            let mine = self
                .stage_ns
                .get_or_insert_with(|| vec![Vec::new(); STAGE_COUNT]);
            for (m, t) in mine.iter_mut().zip(theirs) {
                m.extend(t);
            }
        }
    }

    fn record(&mut self, status: u16, latency_ns: u64, body: &str) {
        match status {
            200 => {
                self.ok += 1;
                self.latencies_ns.push(latency_ns);
                if let Ok(v) = asap_obs::parse_json(body) {
                    if let Some(c) = v.get("checksum").and_then(|c| c.as_str()) {
                        if !self.checksums.iter().any(|s| s == c) {
                            self.checksums.push(c.to_string());
                        }
                    }
                    if let (Some(stages), Some(obj)) = (&mut self.stage_ns, v.get("stage_ns")) {
                        for (i, stage) in STAGES.iter().enumerate() {
                            if let Some(ns) = obj.get(stage.label()).and_then(|n| n.as_u64()) {
                                stages[i].push(ns);
                            }
                        }
                    }
                }
            }
            429 => self.rejected += 1,
            504 => self.deadline += 1,
            s if s >= 500 => self.server_err += 1,
            _ => self.bad += 1,
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn sort_stage_samples(stages: &mut [Vec<u64>]) {
    for s in stages.iter_mut() {
        s.sort_unstable();
    }
}

/// The `--latency-breakdown` table: per-stage p50/p95/p99 over the
/// server-reported `stage_ns` samples. Stages with no samples are
/// omitted — `write` never appears (the response body is rendered
/// before the write is timed) and `queue_wait` is absent on an idle
/// server. Expects each stage's samples pre-sorted.
fn print_stage_breakdown(stages: &[Vec<u64>]) {
    println!("stage breakdown (server-reported stage_ns from 200 bodies):");
    for (i, stage) in STAGES.iter().enumerate() {
        let samples = &stages[i];
        if samples.is_empty() {
            continue;
        }
        println!(
            "  {:10}: p50 {:9.1}us  p95 {:9.1}us  p99 {:9.1}us  (n={})",
            stage.label(),
            percentile(samples, 0.50) as f64 / 1e3,
            percentile(samples, 0.95) as f64 / 1e3,
            percentile(samples, 0.99) as f64 / 1e3,
            samples.len()
        );
    }
}

/// JSON form of the breakdown table. Expects pre-sorted samples.
fn stage_breakdown_json(stages: &[Vec<u64>]) -> String {
    let mut w = ObjWriter::new();
    for (i, stage) in STAGES.iter().enumerate() {
        let samples = &stages[i];
        if samples.is_empty() {
            continue;
        }
        let mut s = ObjWriter::new();
        s.usize("count", samples.len())
            .u64("p50_ns", percentile(samples, 0.50))
            .u64("p95_ns", percentile(samples, 0.95))
            .u64("p99_ns", percentile(samples, 0.99));
        w.raw(stage.label(), &s.finish());
    }
    w.finish()
}

/// The multi-tenant request plan: pre-rendered bodies (distinct inline
/// MatrixMarket payloads), a zipf CDF over them, and the tenant share
/// table. Everything is a pure function of the request index, so the
/// same seed replays the same workload regardless of thread schedule.
struct TenantPlan {
    bodies: Vec<String>,
    zipf_cdf: Vec<f64>,
    tenant_names: Vec<String>,
    /// Request-index → tenant-index assignment cycle (hostile tenants
    /// appear multiple times).
    shares: Vec<usize>,
    seed: u64,
}

impl TenantPlan {
    fn build(args: &Args) -> TenantPlan {
        // Distinct inline matrices: same shape family, different seeds,
        // so each has its own content digest and its own parse cost.
        let bodies = (0..args.pool)
            .map(|j| {
                let tri = gen::erdos_renyi(2048, 8, 0xA5A5 + j as u64);
                let mut mtx = Vec::new();
                write_matrix_market(&tri, &mut mtx).expect("render mtx");
                let mut w = ObjWriter::new();
                w.str("kernel", &args.kernel)
                    .str("mtx", &String::from_utf8(mtx).expect("ascii mtx"))
                    .str("strategy", &args.strategy)
                    .usize("distance", args.distance)
                    .u64("deadline_ms", args.deadline_ms);
                w.finish()
            })
            .collect::<Vec<_>>();
        // Zipf over pool ranks: weight(j) = 1/(j+1)^s, prefix-summed to
        // a CDF sampled with one uniform draw.
        let weights: Vec<f64> = (0..args.pool)
            .map(|j| 1.0 / ((j + 1) as f64).powf(args.zipf))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let zipf_cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let tenant_names: Vec<String> = (0..args.tenants).map(|k| format!("t{k}")).collect();
        let mut shares = Vec::new();
        for k in 0..args.tenants {
            let n = if args.hostile && k == 0 {
                HOSTILE_SHARES
            } else {
                1
            };
            shares.extend(std::iter::repeat_n(k, n));
        }
        TenantPlan {
            bodies,
            zipf_cdf,
            tenant_names,
            shares,
            seed: args.seed,
        }
    }

    fn tenant_of(&self, i: usize) -> usize {
        self.shares[i % self.shares.len()]
    }

    fn body_of(&self, i: usize) -> &str {
        // Deterministic per-index draw: hash the index into a seed, take
        // one uniform sample against the zipf CDF.
        let mut rng =
            Rng64::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let u = rng.gen_f64();
        let j = self
            .zipf_cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.bodies.len() - 1);
        &self.bodies[j]
    }
}

/// One measured phase against `addr`. Open-loop when `rps` is Some
/// (latency from scheduled arrival — CO-aware); closed-loop when None
/// (each thread fires back-to-back for `duration`, measuring capacity).
/// Returns (aggregate, per-tenant) tallies.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    addr: SocketAddr,
    plan: &TenantPlan,
    rps: Option<u64>,
    duration: Duration,
    threads: usize,
    timeout: Duration,
    client: Option<Arc<ResilientClient>>,
    total_cap: usize,
    breakdown: bool,
) -> (Tally, Vec<Tally>, Duration) {
    let next = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let agg = Arc::new(Mutex::new(Tally::default()));
    let per_tenant: Arc<Vec<Mutex<Tally>>> = Arc::new(
        (0..plan.tenant_names.len().max(1))
            .map(|_| Mutex::new(Tally::default()))
            .collect(),
    );
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let next = next.clone();
            let stop = stop.clone();
            let agg = agg.clone();
            let per_tenant = per_tenant.clone();
            let client = client.clone();
            s.spawn(move || {
                let mut local = Tally::new(breakdown);
                let mut local_tenant: Vec<Tally> =
                    (0..per_tenant.len()).map(|_| Tally::default()).collect();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total_cap || stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let scheduled = match rps {
                        Some(r) => {
                            let at = Duration::from_nanos(1_000_000_000 / r) * i as u32;
                            let now = start.elapsed();
                            if now < at {
                                std::thread::sleep(at - now);
                            }
                            at
                        }
                        None => {
                            if start.elapsed() >= duration {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            start.elapsed()
                        }
                    };
                    let t = plan.tenant_of(i);
                    let body = plan.body_of(i);
                    let tenant_header = plan.tenant_names.get(t).map(String::as_str);
                    let headers: Vec<(&str, &str)> = tenant_header
                        .map(|n| vec![("X-Asap-Tenant", n)])
                        .unwrap_or_default();
                    let result = match &client {
                        Some(c) => c
                            .post_with_headers(addr, "/v1/run", &headers, body)
                            .map_err(|e| std::io::Error::other(e.to_string())),
                        None => {
                            exchange_with_headers(addr, "POST", "/v1/run", &headers, body, timeout)
                        }
                    };
                    let latency_ns = start.elapsed().saturating_sub(scheduled).as_nanos() as u64;
                    match result {
                        Ok(reply) => {
                            local.record(reply.status, latency_ns, &reply.body);
                            local_tenant[t].record(reply.status, latency_ns, &reply.body);
                        }
                        Err(_) => {
                            local.transport += 1;
                            local_tenant[t].transport += 1;
                        }
                    }
                }
                agg.lock().unwrap_or_else(|p| p.into_inner()).absorb(local);
                for (t, lt) in local_tenant.into_iter().enumerate() {
                    per_tenant[t]
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .absorb(lt);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let agg = Arc::try_unwrap(agg)
        .unwrap_or_else(|_| unreachable!("workers joined"))
        .into_inner()
        .unwrap_or_else(|p| p.into_inner());
    let per_tenant = Arc::try_unwrap(per_tenant)
        .unwrap_or_else(|_| unreachable!("workers joined"))
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect();
    (agg, per_tenant, elapsed)
}

fn tenant_json(names: &[String], tallies: &mut [Tally], elapsed: Duration) -> String {
    let mut parts = Vec::new();
    for (name, t) in names.iter().zip(tallies.iter_mut()) {
        t.latencies_ns.sort_unstable();
        let mut w = ObjWriter::new();
        w.str("tenant", name)
            .u64("ok", t.ok)
            .raw(
                "ok_per_s",
                &format!("{:.1}", t.ok as f64 / elapsed.as_secs_f64()),
            )
            .u64("rejected_429", t.rejected)
            .u64("deadline_504", t.deadline)
            .u64("bad", t.bad)
            .u64("server_5xx", t.server_err)
            .u64("transport_errors", t.transport)
            .u64("latency_p50_ns", percentile(&t.latencies_ns, 0.50))
            .u64("latency_p99_ns", percentile(&t.latencies_ns, 0.99));
        parts.push(w.finish());
    }
    format!("[{}]", parts.join(","))
}

/// The `--store-ab` experiment: the same closed-loop zipfian multi-tenant
/// workload against a store-enabled and a store-disabled server; the
/// contrast is the price of re-parsing inline matrices every request.
fn run_store_ab(args: &Args, plan: &TenantPlan, timeout: Duration) -> ! {
    let spawn = |store_bytes: u64| -> Server {
        Server::start(ServeConfig {
            store_bytes,
            ..ServeConfig::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("cannot start in-process server: {e}");
            std::process::exit(1);
        })
    };
    let duration = Duration::from_secs(args.duration_s);
    let mut sides = Vec::new();
    for (label, store_bytes) in [("store", 256u64 * 1024 * 1024), ("reparse", 0)] {
        let server = spawn(store_bytes);
        let addr = server.addr();
        // Warm: touch every pool entry once so the store side measures
        // hits, not first-sight builds.
        for body in &plan.bodies {
            for _ in 0..2 {
                if let Err(e) = post(addr, "/v1/run", body, timeout) {
                    eprintln!("warmup against {label} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        let (mut agg, mut per_tenant, elapsed) = run_phase(
            addr,
            plan,
            None,
            duration,
            args.threads,
            timeout,
            None,
            usize::MAX,
            false,
        );
        server.join();
        agg.latencies_ns.sort_unstable();
        let ok_per_s = agg.ok as f64 / elapsed.as_secs_f64();
        println!(
            "{label:8}: {:.0} ok/s over {:.2}s ({} ok, {} rejected, {} deadline, {} bad, {} 5xx, {} transport) p99 {:.2}ms",
            ok_per_s,
            elapsed.as_secs_f64(),
            agg.ok,
            agg.rejected,
            agg.deadline,
            agg.bad,
            agg.server_err,
            agg.transport,
            percentile(&agg.latencies_ns, 0.99) as f64 / 1e6,
        );
        let tenants = tenant_json(&plan.tenant_names, &mut per_tenant, elapsed);
        sides.push((label, ok_per_s, agg, tenants, elapsed));
    }
    let store_rate = sides[0].1;
    let reparse_rate = sides[1].1.max(f64::MIN_POSITIVE);
    let ratio = store_rate / reparse_rate;
    println!("warm-store speedup over reparse: {ratio:.2}x");

    let json = {
        let cfg = {
            let mut w = ObjWriter::new();
            w.str("kernel", &args.kernel)
                .usize("tenants", args.tenants)
                .raw("zipf", &format!("{:.2}", args.zipf))
                .usize("pool", args.pool)
                .bool("hostile", args.hostile)
                .u64("duration_s", args.duration_s)
                .usize("threads", args.threads)
                .u64("seed", args.seed);
            w.finish()
        };
        let mut w = ObjWriter::new();
        w.str("bench", "serve-tenancy-store-ab").raw("config", &cfg);
        for (label, rate, agg, tenants, elapsed) in &sides {
            let mut s = ObjWriter::new();
            s.raw("ok_per_s", &format!("{rate:.1}"))
                .u64("ok", agg.ok)
                .u64("rejected_429", agg.rejected)
                .u64("deadline_504", agg.deadline)
                .u64("bad", agg.bad)
                .u64("server_5xx", agg.server_err)
                .u64("transport_errors", agg.transport)
                .raw("elapsed_s", &format!("{:.3}", elapsed.as_secs_f64()))
                .raw("tenants", tenants);
            w.raw(label, &s.finish());
        }
        w.raw("store_over_reparse", &format!("{ratio:.3}"));
        w.finish()
    };
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out.display());

    if args.strict {
        let server_err: u64 = sides.iter().map(|(_, _, a, _, _)| a.server_err).sum();
        if server_err > 0 {
            eprintln!("FAIL: {server_err} 5xx responses in store A/B");
            std::process::exit(1);
        }
        if sides[0].2.ok == 0 || sides[1].2.ok == 0 {
            eprintln!("FAIL: a side of the A/B produced zero goodput");
            std::process::exit(1);
        }
        if ratio < 2.0 {
            eprintln!("FAIL: warm store {ratio:.2}x over reparse; acceptance wants >= 2x");
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

/// The telemetry-overhead ceiling `--obs-ab --strict` enforces: the
/// tracing plane may cost at most this fraction of baseline throughput.
const OBS_OVERHEAD_GATE: f64 = 0.02;

/// The `--obs-ab` experiment: identical closed-loop workloads against a
/// telemetry-off and a telemetry-on server (access log off on both), so
/// the contrast is the entire request-scoped tracing plane — trace-id
/// minting, stage clocks, labeled histograms, the flight recorder.
/// Closed-loop capacity is noisy, so each side reports its best of
/// `--reps` phases and the gate compares the bests; the acceptance
/// wants the overhead under [`OBS_OVERHEAD_GATE`]. The telemetry side
/// also yields the `--latency-breakdown` stage table (its 200 bodies
/// carry `stage_ns`) and a flight-recorder dump fetched from
/// `/debug/requests` while the server is still up, which CI attaches as
/// an artifact when the gate fails.
fn run_obs_ab(args: &Args, timeout: Duration) -> ! {
    // One small named-matrix request: resident in the store after
    // warmup, so the measured path is short and the fixed per-request
    // telemetry cost is as visible as it ever gets.
    let body = {
        let mut w = ObjWriter::new();
        w.str("kernel", &args.kernel)
            .str("matrix", &args.matrix)
            .str("strategy", &args.strategy)
            .usize("distance", args.distance)
            .u64("deadline_ms", args.deadline_ms);
        w.finish()
    };
    let plan = TenantPlan {
        bodies: vec![body],
        zipf_cdf: vec![1.0],
        tenant_names: Vec::new(),
        shares: vec![0],
        seed: args.seed,
    };
    let duration = Duration::from_secs(args.duration_s);
    let flight_path = args.out.with_extension("flight.jsonl");

    struct Side {
        label: &'static str,
        best: f64,
        rates: Vec<f64>,
        agg: Tally,
    }
    let mut sides: Vec<Side> = Vec::new();
    for (label, telemetry) in [("telemetry_off", false), ("telemetry_on", true)] {
        let server = Server::start(ServeConfig {
            telemetry,
            ..ServeConfig::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("cannot start in-process server: {e}");
            std::process::exit(1);
        });
        let addr = server.addr();
        for i in 0..args.warmup.max(2) {
            if let Err(e) = post(addr, "/v1/run", &plan.bodies[0], timeout) {
                eprintln!("warmup request {i} against {label} failed: {e}");
                std::process::exit(1);
            }
        }
        let mut rates = Vec::new();
        // Harvest stage_ns only where the server emits it.
        let mut agg_all = Tally::new(telemetry);
        for _ in 0..args.reps {
            let (agg, _, elapsed) = run_phase(
                addr,
                &plan,
                None,
                duration,
                args.threads,
                timeout,
                None,
                usize::MAX,
                telemetry,
            );
            rates.push(agg.ok as f64 / elapsed.as_secs_f64());
            agg_all.absorb(agg);
        }
        if telemetry {
            // Dump the flight recorder while the server is still up.
            match get(addr, "/debug/requests", timeout) {
                Ok(reply) if reply.status == 200 => {
                    if let Err(e) = std::fs::write(&flight_path, &reply.body) {
                        eprintln!("cannot write {}: {e}", flight_path.display());
                    } else {
                        eprintln!("wrote {}", flight_path.display());
                    }
                }
                Ok(reply) => eprintln!("/debug/requests answered {}", reply.status),
                Err(e) => eprintln!("/debug/requests failed: {e}"),
            }
        }
        server.join();
        let best = rates.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{label:13}: best {best:.0} ok/s over {} rep(s) [{}] ({} ok, {} 5xx, {} transport)",
            args.reps,
            rates
                .iter()
                .map(|r| format!("{r:.0}"))
                .collect::<Vec<_>>()
                .join(", "),
            agg_all.ok,
            agg_all.server_err,
            agg_all.transport
        );
        sides.push(Side {
            label,
            best,
            rates,
            agg: agg_all,
        });
    }

    let off_best = sides[0].best.max(f64::MIN_POSITIVE);
    let overhead = ((off_best - sides[1].best) / off_best).max(0.0);
    println!(
        "telemetry overhead: {:.2}% of baseline throughput (gate {:.0}%)",
        overhead * 100.0,
        OBS_OVERHEAD_GATE * 100.0
    );
    if let Some(stages) = sides[1].agg.stage_ns.as_mut() {
        sort_stage_samples(stages);
        print_stage_breakdown(stages);
    }

    let json = {
        let cfg = {
            let mut w = ObjWriter::new();
            w.str("matrix", &args.matrix)
                .str("kernel", &args.kernel)
                .str("strategy", &args.strategy)
                .usize("distance", args.distance)
                .u64("duration_s", args.duration_s)
                .usize("threads", args.threads)
                .usize("reps", args.reps)
                .usize("warmup", args.warmup.max(2));
            w.finish()
        };
        let mut w = ObjWriter::new();
        w.str("bench", "serve-obs-ab").raw("config", &cfg);
        for side in &sides {
            let mut s = ObjWriter::new();
            s.raw("ok_per_s_best", &format!("{:.1}", side.best))
                .raw(
                    "ok_per_s_reps",
                    &format!(
                        "[{}]",
                        side.rates
                            .iter()
                            .map(|r| format!("{r:.1}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    ),
                )
                .u64("ok", side.agg.ok)
                .u64("rejected_429", side.agg.rejected)
                .u64("deadline_504", side.agg.deadline)
                .u64("bad", side.agg.bad)
                .u64("server_5xx", side.agg.server_err)
                .u64("transport_errors", side.agg.transport);
            w.raw(side.label, &s.finish());
        }
        w.raw("overhead_frac", &format!("{overhead:.4}"))
            .raw("gate_frac", &format!("{OBS_OVERHEAD_GATE:.2}"));
        if let Some(stages) = &sides[1].agg.stage_ns {
            w.raw("stage_latency", &stage_breakdown_json(stages));
        }
        w.finish()
    };
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out.display());

    if args.strict {
        let server_err: u64 = sides.iter().map(|s| s.agg.server_err).sum();
        if server_err > 0 {
            eprintln!("FAIL: {server_err} 5xx responses in obs A/B");
            std::process::exit(1);
        }
        if sides.iter().any(|s| s.agg.ok == 0) {
            eprintln!("FAIL: a side of the obs A/B produced zero goodput");
            std::process::exit(1);
        }
        if overhead > OBS_OVERHEAD_GATE {
            eprintln!(
                "FAIL: telemetry costs {:.2}% of throughput; acceptance wants <= {:.0}% \
                 (flight dump: {})",
                overhead * 100.0,
                OBS_OVERHEAD_GATE * 100.0,
                flight_path.display()
            );
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    let timeout = Duration::from_millis(args.deadline_ms + 10_000);

    // Multi-tenant experiments build their request plan up front.
    let plan = (args.tenants > 0).then(|| TenantPlan::build(&args));
    if args.store_ab {
        run_store_ab(
            &args,
            plan.as_ref().expect("checked in parse_args"),
            timeout,
        );
    }
    if args.obs_ab {
        run_obs_ab(&args, timeout);
    }

    // --spawn: run the server in this process (the CI smoke path — no
    // orphaned daemons, one exit code).
    let spawned = if args.spawn {
        // Under chaos the proxy forges lying Content-Length heads; a
        // short read timeout keeps those from pinning workers for the
        // 10 s default and wrecking the run's wall clock.
        let cfg = ServeConfig {
            io_timeout_ms: if args.chaos.is_some() { 1_000 } else { 10_000 },
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).unwrap_or_else(|e| {
            eprintln!("cannot start in-process server: {e}");
            std::process::exit(1);
        });
        eprintln!("spawned in-process server on {}", server.addr());
        Some(server)
    } else {
        None
    };
    let addr: SocketAddr = match &spawned {
        Some(s) => s.addr(),
        None => match args.addr.as_deref().unwrap().parse() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("bad --addr: {e}");
                std::process::exit(1);
            }
        },
    };

    // With chaos on, the measured traffic goes through the fault proxy;
    // warmup still talks to the server directly so steady-state is
    // reached deterministically regardless of the fault schedule.
    let server_addr = addr;
    let mut proxy = args.chaos.map(|seed| {
        ChaosProxy::start(server_addr, seed, ChaosConfig::loadgen()).unwrap_or_else(|e| {
            eprintln!("cannot start chaos proxy: {e}");
            std::process::exit(1);
        })
    });
    let addr = proxy.as_ref().map_or(server_addr, |p| p.addr());
    if let Some(seed) = args.chaos {
        eprintln!(
            "chaos proxy on {addr} (seed {seed}) -> server {server_addr}{}",
            if args.retry { ", retry enabled" } else { "" }
        );
    }

    let single_body = {
        let mut w = ObjWriter::new();
        w.str("kernel", &args.kernel)
            .str("matrix", &args.matrix)
            .str("strategy", &args.strategy)
            .usize("distance", args.distance)
            .u64("deadline_ms", args.deadline_ms);
        w.finish()
    };
    let client = args.retry.then(|| {
        Arc::new(ResilientClient::new(
            RetryPolicy {
                seed: args.chaos.unwrap_or(args.seed),
                ..RetryPolicy::default()
            },
            timeout,
        ))
    });

    // The single-tenant legacy path is a one-body, one-tenant "plan".
    let plan = plan.unwrap_or_else(|| TenantPlan {
        bodies: vec![single_body],
        zipf_cdf: vec![1.0],
        tenant_names: Vec::new(),
        shares: vec![0],
        seed: args.seed,
    });

    // Warm the kernel cache and the resolved matrices so the measured
    // window is steady-state (the acceptance number is warm-cache).
    for i in 0..args.warmup {
        let body = plan.body_of(i);
        if let Err(e) = post(server_addr, "/v1/run", body, timeout) {
            eprintln!("warmup request {i} failed: {e}");
            std::process::exit(1);
        }
    }

    let total = (args.rps * args.duration_s) as usize;
    let (mut t, mut per_tenant, elapsed) = run_phase(
        addr,
        &plan,
        Some(args.rps),
        Duration::from_secs(args.duration_s),
        args.threads,
        timeout,
        client,
        total,
        args.latency_breakdown,
    );
    let chaos_stats = proxy.as_mut().map(|p| p.stop());
    // The resilient client reports through the process-global registry;
    // loadgen is its own process, so these are this run's numbers.
    let retries = asap_obs::counter_get("client.retries");
    let breaker_opens = asap_obs::counter_get("client.breaker_opens");
    let checksum_mismatches = asap_obs::counter_get("client.checksum_mismatches");

    t.latencies_ns.sort_unstable();
    let achieved_rps = t.ok as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&t.latencies_ns, 0.50);
    let p95 = percentile(&t.latencies_ns, 0.95);
    let p99 = percentile(&t.latencies_ns, 0.99);
    let pmax = t.latencies_ns.last().copied().unwrap_or(0);

    println!(
        "sent {total} over {:.2}s: {} ok, {} rejected(429), {} deadline(504), {} bad, {} 5xx, {} transport",
        elapsed.as_secs_f64(),
        t.ok,
        t.rejected,
        t.deadline,
        t.bad,
        t.server_err,
        t.transport
    );
    println!(
        "throughput : {achieved_rps:.0} ok/s (target arrival {} req/s)",
        args.rps
    );
    println!(
        "latency    : p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms  max {:.2}ms (CO-aware)",
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
        pmax as f64 / 1e6
    );
    println!(
        "checksums  : {} distinct ({})",
        t.checksums.len(),
        t.checksums.join(", ")
    );
    if let Some(stages) = t.stage_ns.as_mut() {
        sort_stage_samples(stages);
        print_stage_breakdown(stages);
    }
    for (name, tt) in plan.tenant_names.iter().zip(per_tenant.iter_mut()) {
        tt.latencies_ns.sort_unstable();
        println!(
            "tenant {name:6}: {:.1} ok/s ({} ok, {} 429, {} 504, {} 5xx) p99 {:.2}ms",
            tt.ok as f64 / elapsed.as_secs_f64(),
            tt.ok,
            tt.rejected,
            tt.deadline,
            tt.server_err,
            percentile(&tt.latencies_ns, 0.99) as f64 / 1e6
        );
    }
    if let Some(stats) = &chaos_stats {
        println!(
            "chaos      : {} connections proxied, {} with destructive faults \
             (truncate {}, corrupt {}, abort {}); client retries {}, breaker opens {}, \
             checksum mismatches {}",
            stats.connections,
            stats.destructive(),
            stats.by_label("truncate"),
            stats.by_label("corrupt"),
            stats.by_label("abort"),
            retries,
            breaker_opens,
            checksum_mismatches
        );
    }

    let json = {
        let cfg = {
            let mut w = ObjWriter::new();
            w.str("matrix", &args.matrix)
                .str("kernel", &args.kernel)
                .str("strategy", &args.strategy)
                .usize("distance", args.distance)
                .u64("target_rps", args.rps)
                .u64("duration_s", args.duration_s)
                .usize("threads", args.threads)
                .bool("spawned", args.spawn)
                .bool("retry", args.retry);
            if args.tenants > 0 {
                w.usize("tenants", args.tenants)
                    .raw("zipf", &format!("{:.2}", args.zipf))
                    .usize("pool", args.pool)
                    .bool("hostile", args.hostile);
            }
            if let Some(seed) = args.chaos {
                w.u64("chaos_seed", seed);
            }
            w.finish()
        };
        let mut w = ObjWriter::new();
        w.str("bench", "serve-load")
            .raw("config", &cfg)
            .usize("sent", total)
            .u64("ok", t.ok)
            .u64("rejected_429", t.rejected)
            .u64("deadline_504", t.deadline)
            .u64("bad", t.bad)
            .u64("server_5xx", t.server_err)
            .u64("transport_errors", t.transport)
            .u64("retries", retries)
            .u64("breaker_opens", breaker_opens)
            .u64("checksum_mismatches", checksum_mismatches);
        if let Some(stats) = &chaos_stats {
            w.u64("chaos_connections", stats.connections)
                .usize("chaos_destructive", stats.destructive());
        }
        // Goodput: completed-with-200 per second of wall clock — under
        // chaos this is the acceptance number (faults survived), and
        // without chaos it equals the classic achieved rate.
        w.raw("goodput_rps", &format!("{achieved_rps:.1}"))
            .raw("achieved_rps", &format!("{achieved_rps:.1}"))
            .raw("elapsed_s", &format!("{:.3}", elapsed.as_secs_f64()))
            .u64("latency_p50_ns", p50)
            .u64("latency_p95_ns", p95)
            .u64("latency_p99_ns", p99)
            .u64("latency_max_ns", pmax)
            .str_array("checksums", &t.checksums);
        if let Some(stages) = &t.stage_ns {
            w.raw("stage_latency", &stage_breakdown_json(stages));
        }
        if !plan.tenant_names.is_empty() {
            w.raw(
                "tenants",
                &tenant_json(&plan.tenant_names, &mut per_tenant, elapsed),
            );
        }
        w.finish()
    };
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out.display());

    if let Some(server) = spawned {
        server.join();
    }

    // Strict gate (CI smoke). Under chaos the wire itself is hostile —
    // transport errors, 4xx from mangled requests, and even corrupted
    // 200 bodies are *injected* — so the gate is goodput: work still
    // got through. On a clean wire the full contract applies: identical
    // requests agree bit-for-bit, every request gets an answer, and at
    // least one succeeds. Multi-tenant strict additionally wants zero
    // 5xx (isolation failures are server bugs, not client problems) and
    // every victim tenant above the goodput floor.
    if args.strict {
        if args.chaos.is_some() {
            if t.ok == 0 {
                eprintln!("FAIL: zero goodput under chaos (no request survived the faults)");
                std::process::exit(1);
            }
            return;
        }
        if t.server_err > 0 {
            eprintln!("FAIL: {} 5xx responses on a clean wire", t.server_err);
            std::process::exit(1);
        }
        if args.tenants > 0 {
            // Distinct pool matrices legitimately produce distinct
            // checksums; the bit-exactness gate stays per-body and is
            // covered by the single-tenant path and the test suite.
            if t.ok == 0 {
                eprintln!("FAIL: zero goodput");
                std::process::exit(1);
            }
            for (k, (name, tt)) in plan.tenant_names.iter().zip(per_tenant.iter()).enumerate() {
                if args.hostile && k == 0 {
                    continue; // the aggressor earns its 429s
                }
                let ok_per_s = tt.ok as f64 / elapsed.as_secs_f64();
                if ok_per_s < args.victim_floor {
                    eprintln!(
                        "FAIL: tenant {name} at {ok_per_s:.1} ok/s, below the victim floor {:.1}",
                        args.victim_floor
                    );
                    std::process::exit(1);
                }
            }
            return;
        }
        if t.checksums.len() > 1 {
            eprintln!(
                "FAIL: {} distinct checksums from identical requests",
                t.checksums.len()
            );
            std::process::exit(1);
        }
        if t.transport > 0 || t.bad > 0 || t.ok == 0 {
            eprintln!(
                "FAIL: {} transport errors, {} bad responses, {} ok",
                t.transport, t.bad, t.ok
            );
            std::process::exit(1);
        }
    }
}
