//! `asap_loadgen` — open-loop load harness for `asap-serve`.
//!
//! Drives a fixed arrival rate against a running server (or one it
//! spawns in-process with `--spawn`) and reports throughput, response
//! mix, and latency percentiles to `BENCH_serve.json`.
//!
//! ```sh
//! asap_loadgen --spawn --rps 800 --duration-s 5
//! asap_loadgen --addr 127.0.0.1:7070 --matrix gen:er:4096:4 --rps 500
//! ```
//!
//! Open-loop means coordination-omission-aware: request *i* has a
//! scheduled arrival of `start + i/rps`, and its latency is measured
//! from that scheduled instant — a server that falls behind shows the
//! queueing delay in the percentiles instead of hiding it by slowing
//! the generator down. Every 200 response must carry the same checksum
//! (the requests are identical); a mismatch is a correctness failure,
//! not a performance number.
//!
//! Chaos mode (`--chaos SEED`) interposes the deterministic
//! `asap-fuzz` fault-injection proxy between the generator and the
//! server, so a schedule of delays, drips, truncations, corruptions,
//! and aborts hits every connection; `--retry` switches the generator
//! to the self-healing [`ResilientClient`] so BENCH_serve.json reports
//! *goodput* under faults — successful answers per second after
//! retries, not raw attempts.

use asap_fuzz::chaos_proxy::{ChaosConfig, ChaosProxy};
use asap_obs::ObjWriter;
use asap_serve::{post, ResilientClient, RetryPolicy, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Args {
    addr: Option<String>,
    spawn: bool,
    rps: u64,
    duration_s: u64,
    threads: usize,
    warmup: usize,
    matrix: String,
    kernel: String,
    strategy: String,
    distance: usize,
    deadline_ms: u64,
    out: std::path::PathBuf,
    strict: bool,
    chaos: Option<u64>,
    retry: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: asap_loadgen (--addr HOST:PORT | --spawn) [--rps N] [--duration-s S] \
         [--threads N] [--warmup N] [--matrix REF] [--kernel spmv|spmm] \
         [--strategy baseline|asap|aj] [--distance N] [--deadline-ms N] \
         [--out PATH] [--strict] [--chaos SEED] [--retry]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: None,
        spawn: false,
        rps: 600,
        duration_s: 5,
        threads: 8,
        warmup: 20,
        matrix: "gen:er:4096:4".to_string(),
        kernel: "spmv".to_string(),
        strategy: "asap".to_string(),
        distance: 45,
        deadline_ms: 5_000,
        out: std::path::PathBuf::from("BENCH_serve.json"),
        strict: false,
        chaos: None,
        retry: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => a.addr = Some(val()),
            "--spawn" => a.spawn = true,
            "--rps" => a.rps = val().parse().unwrap_or_else(|_| usage()),
            "--duration-s" => a.duration_s = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => a.threads = val().parse().unwrap_or_else(|_| usage()),
            "--warmup" => a.warmup = val().parse().unwrap_or_else(|_| usage()),
            "--matrix" => a.matrix = val(),
            "--kernel" => a.kernel = val(),
            "--strategy" => a.strategy = val(),
            "--distance" => a.distance = val().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => a.deadline_ms = val().parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = std::path::PathBuf::from(val()),
            "--strict" => a.strict = true,
            "--chaos" => a.chaos = Some(val().parse().unwrap_or_else(|_| usage())),
            "--retry" => a.retry = true,
            _ => usage(),
        }
    }
    if a.addr.is_none() && !a.spawn {
        usage();
    }
    if a.rps == 0 || a.duration_s == 0 || a.threads == 0 {
        usage();
    }
    a
}

#[derive(Default)]
struct Tally {
    ok: u64,
    rejected: u64,
    deadline: u64,
    bad: u64,
    transport: u64,
    latencies_ns: Vec<u64>,
    checksums: Vec<String>,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();

    // --spawn: run the server in this process (the CI smoke path — no
    // orphaned daemons, one exit code).
    let spawned = if args.spawn {
        // Under chaos the proxy forges lying Content-Length heads; a
        // short read timeout keeps those from pinning workers for the
        // 10 s default and wrecking the run's wall clock.
        let cfg = ServeConfig {
            io_timeout_ms: if args.chaos.is_some() { 1_000 } else { 10_000 },
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).unwrap_or_else(|e| {
            eprintln!("cannot start in-process server: {e}");
            std::process::exit(1);
        });
        eprintln!("spawned in-process server on {}", server.addr());
        Some(server)
    } else {
        None
    };
    let addr: SocketAddr = match &spawned {
        Some(s) => s.addr(),
        None => match args.addr.as_deref().unwrap().parse() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("bad --addr: {e}");
                std::process::exit(1);
            }
        },
    };

    // With chaos on, the measured traffic goes through the fault proxy;
    // warmup still talks to the server directly so steady-state is
    // reached deterministically regardless of the fault schedule.
    let server_addr = addr;
    let mut proxy = args.chaos.map(|seed| {
        ChaosProxy::start(server_addr, seed, ChaosConfig::loadgen()).unwrap_or_else(|e| {
            eprintln!("cannot start chaos proxy: {e}");
            std::process::exit(1);
        })
    });
    let addr = proxy.as_ref().map_or(server_addr, |p| p.addr());
    if let Some(seed) = args.chaos {
        eprintln!(
            "chaos proxy on {addr} (seed {seed}) -> server {server_addr}{}",
            if args.retry { ", retry enabled" } else { "" }
        );
    }

    let body = {
        let mut w = ObjWriter::new();
        w.str("kernel", &args.kernel)
            .str("matrix", &args.matrix)
            .str("strategy", &args.strategy)
            .usize("distance", args.distance)
            .u64("deadline_ms", args.deadline_ms);
        w.finish()
    };
    let timeout = Duration::from_millis(args.deadline_ms + 10_000);
    let client = args.retry.then(|| {
        Arc::new(ResilientClient::new(
            RetryPolicy {
                seed: args.chaos.unwrap_or(0x10ad),
                ..RetryPolicy::default()
            },
            timeout,
        ))
    });

    // Warm the kernel cache and the resolved matrix so the measured
    // window is steady-state (the acceptance number is warm-cache).
    for i in 0..args.warmup {
        if let Err(e) = post(server_addr, "/v1/run", &body, timeout) {
            eprintln!("warmup request {i} failed: {e}");
            std::process::exit(1);
        }
    }

    let total = (args.rps * args.duration_s) as usize;
    let interval = Duration::from_nanos(1_000_000_000 / args.rps);
    let next = Arc::new(AtomicUsize::new(0));
    let tally = Arc::new(Mutex::new(Tally::default()));
    let start = Instant::now();

    let workers: Vec<_> = (0..args.threads)
        .map(|_| {
            let next = next.clone();
            let tally = tally.clone();
            let body = body.clone();
            let client = client.clone();
            std::thread::spawn(move || {
                let mut local = Tally::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let scheduled = interval * i as u32;
                    let now = start.elapsed();
                    if now < scheduled {
                        std::thread::sleep(scheduled - now);
                    }
                    // The resilient path retries/fast-fails internally;
                    // its terminal error collapses into the transport
                    // bucket like a plain client failure.
                    let result = match &client {
                        Some(c) => c
                            .post(addr, "/v1/run", &body)
                            .map_err(|e| std::io::Error::other(e.to_string())),
                        None => post(addr, "/v1/run", &body, timeout),
                    };
                    match result {
                        Ok(reply) => {
                            let latency = start.elapsed().saturating_sub(scheduled);
                            match reply.status {
                                200 => {
                                    local.ok += 1;
                                    local.latencies_ns.push(latency.as_nanos() as u64);
                                    if let Ok(v) = asap_obs::parse_json(&reply.body) {
                                        if let Some(c) = v.get("checksum").and_then(|c| c.as_str())
                                        {
                                            if !local.checksums.iter().any(|s| s == c) {
                                                local.checksums.push(c.to_string());
                                            }
                                        }
                                    }
                                }
                                429 => local.rejected += 1,
                                504 => local.deadline += 1,
                                _ => local.bad += 1,
                            }
                        }
                        Err(_) => local.transport += 1,
                    }
                }
                let mut t = tally.lock().unwrap_or_else(|p| p.into_inner());
                t.ok += local.ok;
                t.rejected += local.rejected;
                t.deadline += local.deadline;
                t.bad += local.bad;
                t.transport += local.transport;
                t.latencies_ns.extend(local.latencies_ns);
                for c in local.checksums {
                    if !t.checksums.iter().any(|s| s == &c) {
                        t.checksums.push(c);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    let elapsed = start.elapsed();
    let chaos_stats = proxy.as_mut().map(|p| p.stop());
    // The resilient client reports through the process-global registry;
    // loadgen is its own process, so these are this run's numbers.
    let retries = asap_obs::counter_get("client.retries");
    let breaker_opens = asap_obs::counter_get("client.breaker_opens");
    let checksum_mismatches = asap_obs::counter_get("client.checksum_mismatches");

    let mut t = Arc::try_unwrap(tally)
        .unwrap_or_else(|_| unreachable!("workers joined"))
        .into_inner()
        .unwrap_or_else(|p| p.into_inner());
    t.latencies_ns.sort_unstable();
    let achieved_rps = t.ok as f64 / elapsed.as_secs_f64();
    let p50 = percentile(&t.latencies_ns, 0.50);
    let p95 = percentile(&t.latencies_ns, 0.95);
    let p99 = percentile(&t.latencies_ns, 0.99);
    let pmax = t.latencies_ns.last().copied().unwrap_or(0);

    println!(
        "sent {total} over {:.2}s: {} ok, {} rejected(429), {} deadline(504), {} bad, {} transport",
        elapsed.as_secs_f64(),
        t.ok,
        t.rejected,
        t.deadline,
        t.bad,
        t.transport
    );
    println!(
        "throughput : {achieved_rps:.0} ok/s (target arrival {} req/s)",
        args.rps
    );
    println!(
        "latency    : p50 {:.2}ms  p95 {:.2}ms  p99 {:.2}ms  max {:.2}ms",
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
        pmax as f64 / 1e6
    );
    println!(
        "checksums  : {} distinct ({})",
        t.checksums.len(),
        t.checksums.join(", ")
    );
    if let Some(stats) = &chaos_stats {
        println!(
            "chaos      : {} connections proxied, {} with destructive faults \
             (truncate {}, corrupt {}, abort {}); client retries {}, breaker opens {}, \
             checksum mismatches {}",
            stats.connections,
            stats.destructive(),
            stats.by_label("truncate"),
            stats.by_label("corrupt"),
            stats.by_label("abort"),
            retries,
            breaker_opens,
            checksum_mismatches
        );
    }

    let json = {
        let cfg = {
            let mut w = ObjWriter::new();
            w.str("matrix", &args.matrix)
                .str("kernel", &args.kernel)
                .str("strategy", &args.strategy)
                .usize("distance", args.distance)
                .u64("target_rps", args.rps)
                .u64("duration_s", args.duration_s)
                .usize("threads", args.threads)
                .bool("spawned", args.spawn)
                .bool("retry", args.retry);
            if let Some(seed) = args.chaos {
                w.u64("chaos_seed", seed);
            }
            w.finish()
        };
        let mut w = ObjWriter::new();
        w.str("bench", "serve-load")
            .raw("config", &cfg)
            .usize("sent", total)
            .u64("ok", t.ok)
            .u64("rejected_429", t.rejected)
            .u64("deadline_504", t.deadline)
            .u64("bad", t.bad)
            .u64("transport_errors", t.transport)
            .u64("retries", retries)
            .u64("breaker_opens", breaker_opens)
            .u64("checksum_mismatches", checksum_mismatches);
        if let Some(stats) = &chaos_stats {
            w.u64("chaos_connections", stats.connections)
                .usize("chaos_destructive", stats.destructive());
        }
        // Goodput: completed-with-200 per second of wall clock — under
        // chaos this is the acceptance number (faults survived), and
        // without chaos it equals the classic achieved rate.
        w.raw("goodput_rps", &format!("{achieved_rps:.1}"))
            .raw("achieved_rps", &format!("{achieved_rps:.1}"))
            .raw("elapsed_s", &format!("{:.3}", elapsed.as_secs_f64()))
            .u64("latency_p50_ns", p50)
            .u64("latency_p95_ns", p95)
            .u64("latency_p99_ns", p99)
            .u64("latency_max_ns", pmax)
            .str_array("checksums", &t.checksums);
        w.finish()
    };
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out.display());

    if let Some(server) = spawned {
        server.join();
    }

    // Strict gate (CI smoke). Under chaos the wire itself is hostile —
    // transport errors, 4xx from mangled requests, and even corrupted
    // 200 bodies are *injected* — so the gate is goodput: work still
    // got through. On a clean wire the full contract applies: identical
    // requests agree bit-for-bit, every request gets an answer, and at
    // least one succeeds.
    if args.strict {
        if args.chaos.is_some() {
            if t.ok == 0 {
                eprintln!("FAIL: zero goodput under chaos (no request survived the faults)");
                std::process::exit(1);
            }
            return;
        }
        if t.checksums.len() > 1 {
            eprintln!(
                "FAIL: {} distinct checksums from identical requests",
                t.checksums.len()
            );
            std::process::exit(1);
        }
        if t.transport > 0 || t.bad > 0 || t.ok == 0 {
            eprintln!(
                "FAIL: {} transport errors, {} bad responses, {} ok",
                t.transport, t.bad, t.ok
            );
            std::process::exit(1);
        }
    }
}
