//! perfstat: wall-clock A/B/C of the three execution tiers.
//!
//! For every matrix in the synthetic SpMV collection, runs the same
//! compiled kernel under the tree-walking interpreter, the bytecode VM,
//! and the tier-2 native specialization (identical bound buffers),
//! measures wall-clock time over `--reps` repetitions, and reports
//! simulated instructions per second for each tier plus the aggregate
//! speedups (VM over tree-walk, tier-2 over VM). Results land in a
//! hand-rolled JSON report (`--out`, default `BENCH_exec.json`); the
//! process exits non-zero if the VM speedup falls below `--min-speedup`,
//! the tier-2-over-VM speedup falls below `--min-tier2-speedup`, or the
//! disabled-observability overhead exceeds `--max-obs-overhead` (all
//! CI regression gates).
//!
//! A further timing configuration re-runs the bytecode engine with the
//! (disabled) span-recorder instrumentation exercised every rep — the
//! `obs_overhead` column verifies asap-obs's contract that dormant
//! instrumentation costs under 2%. Both ratio gates (budget, obs) use
//! min-of-reps on *both* arms: totals on a shared runner are jittery
//! enough to report negative overheads, while the per-arm minimum
//! strips scheduler spikes symmetrically.
//!
//! Usage: `perfstat [--size tiny|small|full] [--reps N]
//!         [--out <path.json>] [--min-speedup X] [--min-tier2-speedup X]
//!         [--max-obs-overhead X]`

use asap_bench::PAPER_DISTANCE;
use asap_core::{cache_stats_full, compile_cached, ExecEngine, PrefetchStrategy};
use asap_ir::{execute_budgeted, interpret_budgeted, Budget, BufferData, MemoryModel, OpId};
use asap_matrices::{synthetic_collection, SizeClass};
use asap_obs::ObjWriter;
use asap_sparsifier::{bind, KernelSpec};
use asap_tensor::{DenseTensor, Format, SparseTensor, ValueKind};
use std::path::PathBuf;
use std::time::Instant;

/// Counts retired instructions with the same accounting as the trace and
/// timing models (each memory event retires one instruction), without
/// storing events — so the A/B timing measures engine dispatch, not
/// trace-buffer growth.
#[derive(Default)]
struct CountModel {
    instructions: u64,
}

impl MemoryModel for CountModel {
    fn load(&mut self, _pc: OpId, _addr: u64, _bytes: u8) {
        self.instructions += 1;
    }
    fn store(&mut self, _pc: OpId, _addr: u64, _bytes: u8) {
        self.instructions += 1;
    }
    fn prefetch(&mut self, _pc: OpId, _addr: u64, _locality: u8, _write: bool) {
        self.instructions += 1;
    }
    fn retire(&mut self, n: u64) {
        self.instructions += n;
    }
}

struct Args {
    size: SizeClass,
    reps: usize,
    out: PathBuf,
    min_speedup: f64,
    /// Gate: fail if tier-2's aggregate speedup over the bytecode VM
    /// falls below this factor (CI uses 3.0).
    min_tier2_speedup: f64,
    /// Gate: fail if the disabled-recorder instrumentation costs more
    /// than this fraction of the plain bytecode time (CI uses 0.02).
    max_obs_overhead: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: SizeClass::Small,
        reps: 3,
        out: PathBuf::from("BENCH_exec.json"),
        min_speedup: 0.0,
        min_tier2_speedup: 0.0,
        max_obs_overhead: f64::INFINITY,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--size" => {
                args.size = match value("--size")?.as_str() {
                    "tiny" => SizeClass::Tiny,
                    "small" => SizeClass::Small,
                    "full" => SizeClass::Full,
                    other => return Err(format!("unknown size {other} (tiny|small|full)")),
                }
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse::<usize>()
                    .map_err(|e| format!("--reps: {e}"))?
                    .max(1)
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup")?
                    .parse::<f64>()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            "--min-tier2-speedup" => {
                args.min_tier2_speedup = value("--min-tier2-speedup")?
                    .parse::<f64>()
                    .map_err(|e| format!("--min-tier2-speedup: {e}"))?
            }
            "--max-obs-overhead" => {
                args.max_obs_overhead = value("--max-obs-overhead")?
                    .parse::<f64>()
                    .map_err(|e| format!("--max-obs-overhead: {e}"))?
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

struct Row {
    name: String,
    nnz: usize,
    instructions: u64,
    tree_ms: f64,
    byte_ms: f64,
    /// Bytecode again, but with an armed (never-tripping) fuel meter:
    /// the cost of the budget check on every loop back-edge and inside
    /// the SpmvLoop superinstruction's fast path.
    governed_ms: f64,
    /// Tier-2 native specialization (prefetch distances baked in).
    tier2_ms: f64,
    /// Min-of-reps bytecode time — the noise floor used for the
    /// overhead ratios (totals are too jittery for a small-percentage
    /// gate on a shared runner; the minimum strips scheduler spikes).
    byte_min_ms: f64,
    /// Min-of-reps armed-meter time, to pair with `byte_min_ms`: the
    /// budget-overhead ratio uses the minimum on both arms so noise on
    /// either side cannot drive the reported overhead negative.
    governed_min_ms: f64,
    /// Min-of-reps tier-2 time, for the tier-2 speedup ratio.
    tier2_min_ms: f64,
    /// Bytecode again, exercising the *disabled* asap-obs span/counter
    /// instrumentation each rep: the cost of dormant observability.
    /// Min-of-reps, to pair with `byte_min_ms`.
    obs_min_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.tree_ms / self.byte_ms
    }
    fn tier2_speedup(&self) -> f64 {
        self.byte_min_ms / self.tier2_min_ms
    }
    fn budget_overhead(&self) -> f64 {
        self.governed_min_ms / self.byte_min_ms - 1.0
    }
    fn obs_overhead(&self) -> f64 {
        self.obs_min_ms / self.byte_min_ms - 1.0
    }
    /// Simulated MIPS: retired instructions over wall-clock. Tier-2
    /// retires no simulated instructions itself, so its MIPS figure
    /// uses the VM's count for the same kernel — "how fast would the
    /// VM have to run to match this wall-clock".
    fn mips(&self, ms: f64) -> f64 {
        self.instructions as f64 / (ms * 1e3)
    }
}

/// Time `reps` runs of one engine; returns (total elapsed ms, min
/// single-rep ms, instructions per run, bitwise output). Instructions
/// and output are identical across reps (the engines are
/// deterministic). Operand binding — the O(nnz) copy of the sparse
/// arrays into interpreter buffers — happens outside the timed window:
/// it is identical for both engines and would only dilute the A/B
/// ratio.
fn time_engine(
    ck: &asap_core::CompiledKernel,
    sparse: &SparseTensor,
    x: &[f64],
    engine: ExecEngine,
    reps: usize,
    budget: &Budget,
    obs: bool,
) -> Result<(f64, f64, u64, Vec<u64>), String> {
    let n = sparse.dims()[1];
    let cx = DenseTensor::from_f64(vec![n], x.to_vec());
    let out = DenseTensor::zeros(ValueKind::F64, vec![sparse.dims()[0]]);
    let mut instructions = 0;
    let mut bits = Vec::new();
    let mut elapsed = 0.0;
    let mut min_rep = f64::INFINITY;
    for _ in 0..reps {
        let mut bound = bind(&ck.kernel, sparse, &[&cx], &out).map_err(|e| e.to_string())?;
        let mut model = CountModel::default();
        let start = Instant::now();
        // With `obs` set, exercise the per-run instrumentation the
        // pipeline carries (disabled-recorder spans + one counter) so
        // obs_overhead measures the dormant no-op path.
        let _obs_span = if obs {
            asap_obs::counter_inc("perfstat.reps");
            Some(asap_obs::span("exec"))
        } else {
            None
        };
        let ran = match engine {
            ExecEngine::Bytecode => {
                let prog = ck.program.as_ref().ok_or("kernel has no lowered program")?;
                execute_budgeted(prog, &bound.args, &mut bound.bufs, &mut model, budget)
            }
            ExecEngine::Tier2 => {
                let plan = ck
                    .tier2
                    .as_ref()
                    .ok_or("kernel has no tier-2 specialization")?;
                plan.run(&bound.args, &mut bound.bufs, budget)
            }
            _ => interpret_budgeted(
                &ck.kernel.func,
                &bound.args,
                &mut bound.bufs,
                &mut model,
                budget,
            ),
        };
        let rep = start.elapsed().as_secs_f64();
        elapsed += rep;
        min_rep = min_rep.min(rep);
        ran.map_err(|e| e.to_string())?;
        instructions = model.instructions;
        bits = match &bound.bufs.get(bound.out_buf).data {
            BufferData::F64(v) => v.iter().map(|y| y.to_bits()).collect(),
            other => return Err(format!("output buffer is not f64: {other:?}")),
        };
    }
    Ok((elapsed * 1e3, min_rep * 1e3, instructions, bits))
}

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let spec = KernelSpec::spmv(ValueKind::F64);
    let strategy = PrefetchStrategy::asap(PAPER_DISTANCE);

    // An armed fuel meter that can never trip: times the per-back-edge
    // budget check itself, not any governed termination.
    let unarmed = Budget::unlimited();
    let armed = Budget::unlimited().with_fuel(u64::MAX);

    println!(
        "# perfstat: simulated-instructions/sec, tree-walk vs bytecode vs tier-2 (SpMV, asap)"
    );
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "matrix",
        "nnz",
        "instrs",
        "tree MI/s",
        "byte MI/s",
        "t2 MI/s",
        "speedup",
        "t2 spd",
        "budget%",
        "obs%"
    );

    let mut rows: Vec<Row> = Vec::new();
    for m in synthetic_collection(args.size) {
        let tri = m.materialize();
        let sparse = SparseTensor::try_from_coo(
            &tri.try_to_coo_f64().map_err(|e| e.to_string())?,
            Format::csr(),
        )
        .map_err(|e| e.to_string())?;
        let ck = compile_cached(&spec, sparse.format(), sparse.index_width(), &strategy)
            .map_err(|e| e.to_string())?;
        let x: Vec<f64> = (0..tri.ncols)
            .map(|i| 0.25 + (i % 31) as f64 * 0.125)
            .collect();

        let (tree_ms, _, tree_instr, tree_bits) = time_engine(
            &ck,
            &sparse,
            &x,
            ExecEngine::TreeWalk,
            args.reps,
            &unarmed,
            false,
        )
        .map_err(|e| format!("{}: tree-walk: {e}", m.name))?;
        let (byte_ms, byte_min_ms, byte_instr, byte_bits) = time_engine(
            &ck,
            &sparse,
            &x,
            ExecEngine::Bytecode,
            args.reps,
            &unarmed,
            false,
        )
        .map_err(|e| format!("{}: bytecode: {e}", m.name))?;
        let (governed_ms, governed_min_ms, governed_instr, governed_bits) = time_engine(
            &ck,
            &sparse,
            &x,
            ExecEngine::Bytecode,
            args.reps,
            &armed,
            false,
        )
        .map_err(|e| format!("{}: bytecode (budgeted): {e}", m.name))?;
        let (tier2_ms, tier2_min_ms, _, tier2_bits) = time_engine(
            &ck,
            &sparse,
            &x,
            ExecEngine::Tier2,
            args.reps,
            &unarmed,
            false,
        )
        .map_err(|e| format!("{}: tier-2: {e}", m.name))?;
        let (_, obs_min_ms, obs_instr, obs_bits) = time_engine(
            &ck,
            &sparse,
            &x,
            ExecEngine::Bytecode,
            args.reps,
            &unarmed,
            true,
        )
        .map_err(|e| format!("{}: bytecode (obs): {e}", m.name))?;
        if tree_bits != byte_bits
            || byte_bits != governed_bits
            || byte_bits != obs_bits
            || byte_bits != tier2_bits
        {
            return Err(format!("{}: engine outputs differ bitwise", m.name));
        }
        if tree_instr != byte_instr || byte_instr != governed_instr || byte_instr != obs_instr {
            return Err(format!(
                "{}: retired-instruction counts differ: tree-walk {tree_instr} vs bytecode {byte_instr} vs budgeted {governed_instr} vs obs {obs_instr}",
                m.name
            ));
        }

        let row = Row {
            name: m.name.clone(),
            nnz: sparse.nnz(),
            instructions: tree_instr,
            tree_ms,
            byte_ms,
            governed_ms,
            tier2_ms,
            byte_min_ms,
            governed_min_ms,
            tier2_min_ms,
            obs_min_ms,
        };
        println!(
            "{:<24} {:>10} {:>12} {:>12.1} {:>12.1} {:>12.1} {:>8.2} {:>8.2} {:>7.1}% {:>7.1}%",
            row.name,
            row.nnz,
            row.instructions,
            row.mips(row.tree_ms),
            row.mips(row.byte_ms),
            row.mips(row.tier2_ms),
            row.speedup(),
            row.tier2_speedup(),
            100.0 * row.budget_overhead(),
            100.0 * row.obs_overhead()
        );
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("empty collection".into());
    }

    let tree_total: f64 = rows.iter().map(|r| r.tree_ms).sum();
    let byte_total: f64 = rows.iter().map(|r| r.byte_ms).sum();
    let governed_total: f64 = rows.iter().map(|r| r.governed_ms).sum();
    let tier2_total: f64 = rows.iter().map(|r| r.tier2_ms).sum();
    let byte_min_total: f64 = rows.iter().map(|r| r.byte_min_ms).sum();
    let governed_min_total: f64 = rows.iter().map(|r| r.governed_min_ms).sum();
    let tier2_min_total: f64 = rows.iter().map(|r| r.tier2_min_ms).sum();
    let obs_min_total: f64 = rows.iter().map(|r| r.obs_min_ms).sum();
    let instr_total: u64 = rows.iter().map(|r| r.instructions).sum();
    let speedup = tree_total / byte_total;
    let tier2_speedup = byte_min_total / tier2_min_total;
    let tier2_mips = instr_total as f64 / (tier2_total * 1e3);
    let budget_overhead = governed_min_total / byte_min_total - 1.0;
    let obs_overhead = obs_min_total / byte_min_total - 1.0;
    let cache = cache_stats_full();
    println!();
    println!(
        "aggregate: {instr_total} instructions/run, tree-walk {:.1} ms, bytecode {:.1} ms, speedup {speedup:.2}x",
        tree_total, byte_total
    );
    println!(
        "tier-2: native specializations {tier2_min_total:.1} ms vs bytecode {byte_min_total:.1} ms \
         (min-of-reps), speedup {tier2_speedup:.2}x over the VM, {tier2_mips:.0} VM-equivalent MI/s"
    );
    println!(
        "budget meter: armed bytecode {governed_min_total:.1} ms vs {byte_min_total:.1} ms \
         (min-of-reps), back-edge check overhead {:+.1}% \
         (documented target <5%; informational — shared-runner noise makes it ungated)",
        100.0 * budget_overhead
    );
    println!(
        "observability: dormant instrumentation {obs_min_total:.1} ms vs {byte_min_total:.1} ms \
         (min-of-reps), overhead {:+.1}% (contract: <2% when the recorder is off)",
        100.0 * obs_overhead
    );
    println!(
        "compile cache: {} hits, {} misses ({} tier-2-specialized hits, {} misses), \
         {} evictions, {} poison recoveries, ~{} bytes resident",
        cache.hits,
        cache.misses,
        cache.tier2_hits,
        cache.tier2_misses,
        cache.evictions,
        cache.poison_recoveries,
        cache.bytes
    );

    // Fixed-precision floats by design: the artifact diffs cleanly run
    // to run, so `raw` with pre-rendered tokens instead of shortest-repr.
    let row_objs: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut w = ObjWriter::new();
            w.str("name", &r.name)
                .usize("nnz", r.nnz)
                .u64("instructions", r.instructions)
                .raw("tree_walk_ms", &format!("{:.3}", r.tree_ms))
                .raw("bytecode_ms", &format!("{:.3}", r.byte_ms))
                .raw("budgeted_ms", &format!("{:.3}", r.governed_ms))
                .raw("tier2_ms", &format!("{:.3}", r.tier2_ms))
                .raw("bytecode_min_ms", &format!("{:.3}", r.byte_min_ms))
                .raw("budgeted_min_ms", &format!("{:.3}", r.governed_min_ms))
                .raw("tier2_min_ms", &format!("{:.3}", r.tier2_min_ms))
                .raw("obs_min_ms", &format!("{:.3}", r.obs_min_ms))
                .raw("tree_walk_mips", &format!("{:.1}", r.mips(r.tree_ms)))
                .raw("bytecode_mips", &format!("{:.1}", r.mips(r.byte_ms)))
                .raw("tier2_mips", &format!("{:.1}", r.mips(r.tier2_ms)))
                .raw("speedup", &format!("{:.3}", r.speedup()))
                .raw("tier2_speedup", &format!("{:.3}", r.tier2_speedup()))
                .raw("budget_overhead", &format!("{:.4}", r.budget_overhead()))
                .raw("obs_overhead", &format!("{:.4}", r.obs_overhead()));
            format!("    {}", w.finish())
        })
        .collect();
    let total = {
        let mut w = ObjWriter::new();
        w.u64("instructions", instr_total)
            .raw("tree_walk_ms", &format!("{tree_total:.3}"))
            .raw("bytecode_ms", &format!("{byte_total:.3}"))
            .raw("budgeted_ms", &format!("{governed_total:.3}"))
            .raw("tier2_ms", &format!("{tier2_total:.3}"))
            .raw("bytecode_min_ms", &format!("{byte_min_total:.3}"))
            .raw("budgeted_min_ms", &format!("{governed_min_total:.3}"))
            .raw("tier2_min_ms", &format!("{tier2_min_total:.3}"))
            .raw("obs_min_ms", &format!("{obs_min_total:.3}"))
            .raw(
                "tree_walk_mips",
                &format!("{:.1}", instr_total as f64 / (tree_total * 1e3)),
            )
            .raw(
                "bytecode_mips",
                &format!("{:.1}", instr_total as f64 / (byte_total * 1e3)),
            )
            .raw("tier2_mips", &format!("{tier2_mips:.1}"))
            .raw("speedup", &format!("{speedup:.3}"))
            .raw("tier2_speedup", &format!("{tier2_speedup:.3}"))
            .raw("budget_overhead", &format!("{budget_overhead:.4}"))
            .raw("obs_overhead", &format!("{obs_overhead:.4}"));
        w.finish()
    };
    let cache_obj = {
        let mut w = ObjWriter::new();
        let shard_bytes: Vec<String> = cache.shard_bytes.iter().map(u64::to_string).collect();
        w.u64("hits", cache.hits)
            .u64("misses", cache.misses)
            .u64("tier2_hits", cache.tier2_hits)
            .u64("tier2_misses", cache.tier2_misses)
            .u64("evictions", cache.evictions)
            .u64("poison_recoveries", cache.poison_recoveries)
            .u64("bytes", cache.bytes)
            .raw("shard_bytes", &format!("[{}]", shard_bytes.join(", ")));
        w.finish()
    };
    let json = format!(
        "{{\n  \"bench\": \"exec-engine\",\n  \"kernel\": \"spmv\",\n  \"variant\": \"asap\",\n  \"reps\": {},\n  \"matrices\": [\n{}\n  ],\n  \"total\": {total},\n  \"compile_cache\": {cache_obj}\n}}\n",
        args.reps,
        row_objs.join(",\n")
    );
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&args.out, json).map_err(|e| e.to_string())?;
    eprintln!("wrote {}", args.out.display());

    if speedup < args.min_speedup {
        return Err(format!(
            "aggregate speedup {speedup:.3} below required {:.3}",
            args.min_speedup
        ));
    }
    if tier2_speedup < args.min_tier2_speedup {
        return Err(format!(
            "aggregate tier-2 speedup {tier2_speedup:.3} over the VM below required {:.3}",
            args.min_tier2_speedup
        ));
    }
    if obs_overhead > args.max_obs_overhead {
        return Err(format!(
            "dormant observability overhead {:.4} above allowed {:.4}",
            obs_overhead, args.max_obs_overhead
        ));
    }
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
