//! Figure 7: Equal-Work harmonic-mean Speedup (EWS) for SpMV across
//! matrix groups, single-threaded, with "-default" (out-of-box hardware
//! prefetchers) and optimized (L1 NLP and L2 AMP disabled) configurations.
//!
//! Paper shape: ASaP ~1.42x on the Selected (unstructured) aggregate with
//! optimized prefetchers, consistently above ASaP-default; the baseline
//! is roughly insensitive to the configuration; "Others" regresses (~0.8x).

use asap_bench::{
    cell_key, harmonic_mean, matrix_threads, parallel_map, run_spmv_budgeted, ExperimentResult,
    Options, Variant, PAPER_DISTANCE,
};
use asap_ir::AsapError;
use asap_matrices::{synthetic_collection, UNSTRUCTURED_GROUPS};
use asap_sim::{GracemontConfig, PrefetcherConfig};
use std::collections::BTreeMap;

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let opts = Options::from_args();
    opts.init_trace();
    let ckpt = opts
        .checkpoint("fig7")
        .map_err(|e| AsapError::io(e.to_string()))?;
    let ckpt = &ckpt;
    // Built once: fuel bounds each cell (one meter per run), the
    // deadline — an absolute instant — bounds the whole sweep.
    let budget = opts.budget();
    let budget = &budget;
    let cfg = GracemontConfig::scaled();
    let configs = [
        (
            "baseline",
            Variant::Baseline,
            PrefetcherConfig::optimized_spmv(),
        ),
        (
            "baseline-default",
            Variant::Baseline,
            PrefetcherConfig::hw_default(),
        ),
        (
            "asap",
            Variant::Asap {
                distance: PAPER_DISTANCE,
            },
            PrefetcherConfig::optimized_spmv(),
        ),
        (
            "asap-default",
            Variant::Asap {
                distance: PAPER_DISTANCE,
            },
            PrefetcherConfig::hw_default(),
        ),
    ];

    // All four configs of one matrix run on the same pool worker; the
    // per-config throughput columns are reassembled in collection order.
    let per_matrix = parallel_map(
        synthetic_collection(opts.size),
        matrix_threads(1),
        |_, m| {
            let tri = m.materialize();
            let mut rows = Vec::with_capacity(configs.len());
            for (label, v, pf) in &configs {
                rows.push(ckpt.run_cell(
                    &cell_key(&m.name, "spmv", v.label(), label, 1),
                    || {
                        run_spmv_budgeted(
                            &tri,
                            &m.name,
                            &m.group,
                            m.unstructured,
                            *v,
                            *pf,
                            label,
                            cfg,
                            budget,
                        )
                    },
                )?);
            }
            Ok::<_, AsapError>((m, rows))
        },
    );

    // throughput[config][matrix index]
    let mut thr: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let mut groups: Vec<(String, bool)> = Vec::new();
    let mut results: Vec<ExperimentResult> = Vec::new();
    for row in per_matrix {
        let (m, rows) = row?;
        groups.push((m.group.clone(), m.unstructured));
        for ((label, _, _), r) in configs.iter().zip(rows) {
            thr.entry(label).or_default().push(r.throughput);
            results.push(r);
        }
    }

    let ews_of = |label: &str, pick: &dyn Fn(usize) -> bool| -> Option<f64> {
        let sel: Vec<f64> = thr[label]
            .iter()
            .enumerate()
            .filter(|(i, _)| pick(*i))
            .map(|(_, &t)| t)
            .collect();
        let base: Vec<f64> = thr["baseline"]
            .iter()
            .enumerate()
            .filter(|(i, _)| pick(*i))
            .map(|(_, &t)| t)
            .collect();
        if sel.is_empty() {
            None
        } else {
            Some(harmonic_mean(&sel) / harmonic_mean(&base))
        }
    };

    println!("# Figure 7: SpMV EWS by group (relative to baseline w/ optimized prefetchers)");
    println!(
        "{:<12} {:>9} {:>17} {:>9} {:>13}",
        "group", "baseline", "baseline-default", "asap", "asap-default"
    );
    let mut group_names: Vec<String> = UNSTRUCTURED_GROUPS.iter().map(|s| s.to_string()).collect();
    group_names.push("Selected".into());
    group_names.push("Others".into());
    for g in &group_names {
        let groups = &groups;
        let gname = g.clone();
        let pick: Box<dyn Fn(usize) -> bool> = match g.as_str() {
            "Selected" => Box::new(move |i: usize| groups[i].1),
            "Others" => Box::new(move |i: usize| !groups[i].1),
            _ => Box::new(move |i: usize| groups[i].0 == gname),
        };
        let row: Vec<String> = ["baseline", "baseline-default", "asap", "asap-default"]
            .iter()
            .map(|l| {
                ews_of(l, &*pick)
                    .map(|x| format!("{x:.3}"))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        println!(
            "{:<12} {:>9} {:>17} {:>9} {:>13}",
            g, row[0], row[1], row[2], row[3]
        );
    }
    println!();
    println!("paper reference: Selected asap ~1.42, Others asap ~0.8, asap > asap-default");
    opts.save("fig7", &results)?;
    opts.finish_trace("fig7")?;
    Ok(())
}
