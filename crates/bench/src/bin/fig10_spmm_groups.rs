//! Figure 10: Equal-Work harmonic-mean Speedup (EWS) for SpMM across
//! matrix groups (single-threaded, 8 dense columns).
//!
//! Paper shape: ~1.28x for the unstructured aggregate ("Selected"),
//! ~1.02x for the rest; hardware-prefetcher configuration differences are
//! negligible for SpMM (which is why Figure 10 omits the "-default" bars).

use asap_bench::{
    cell_key, harmonic_mean, matrix_threads, parallel_map, run_spmm_budgeted, ExperimentResult,
    Options, Variant, PAPER_DISTANCE, SPMM_COLS_F64,
};
use asap_ir::AsapError;
use asap_matrices::{spmm_collection, UNSTRUCTURED_GROUPS};
use asap_sim::{GracemontConfig, PrefetcherConfig};

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let opts = Options::from_args();
    opts.init_trace();
    let ckpt = opts
        .checkpoint("fig10")
        .map_err(|e| AsapError::io(e.to_string()))?;
    let ckpt = &ckpt;
    // Built once: fuel bounds each cell (one meter per run), the
    // deadline — an absolute instant — bounds the whole sweep.
    let budget = opts.budget();
    let budget = &budget;
    let cfg = GracemontConfig::scaled();
    let pf = PrefetcherConfig::optimized_spmm();

    // Per-matrix baseline/ASaP pairs simulate on pool workers.
    let per_matrix = parallel_map(spmm_collection(opts.size), matrix_threads(1), |_, m| {
        let tri = m.materialize();
        let b = ckpt.run_cell(
            &cell_key(&m.name, "spmm", Variant::Baseline.label(), "optimized", 1),
            || {
                run_spmm_budgeted(
                    &tri,
                    &m.name,
                    &m.group,
                    m.unstructured,
                    SPMM_COLS_F64,
                    Variant::Baseline,
                    pf,
                    "optimized",
                    cfg,
                    budget,
                )
            },
        )?;
        let asap_v = Variant::Asap {
            distance: PAPER_DISTANCE,
        };
        let a = ckpt.run_cell(
            &cell_key(&m.name, "spmm", asap_v.label(), "optimized", 1),
            || {
                run_spmm_budgeted(
                    &tri,
                    &m.name,
                    &m.group,
                    m.unstructured,
                    SPMM_COLS_F64,
                    asap_v,
                    pf,
                    "optimized",
                    cfg,
                    budget,
                )
            },
        )?;
        Ok::<_, AsapError>((m, b, a))
    });

    let mut base_thr = Vec::new();
    let mut asap_thr = Vec::new();
    let mut groups: Vec<(String, bool)> = Vec::new();
    let mut results: Vec<ExperimentResult> = Vec::new();
    for row in per_matrix {
        let (m, b, a) = row?;
        groups.push((m.group.clone(), m.unstructured));
        base_thr.push(b.throughput);
        asap_thr.push(a.throughput);
        results.push(b);
        results.push(a);
    }

    println!("# Figure 10: SpMM EWS by group (ASaP vs baseline)");
    println!("{:<12} {:>9}", "group", "asap");
    let mut names: Vec<String> = UNSTRUCTURED_GROUPS.iter().map(|s| s.to_string()).collect();
    names.push("Selected".into());
    names.push("Others".into());
    for g in &names {
        let pick = |i: usize| match g.as_str() {
            "Selected" => groups[i].1,
            "Others" => !groups[i].1,
            name => groups[i].0 == name,
        };
        let a: Vec<f64> = asap_thr
            .iter()
            .enumerate()
            .filter(|(i, _)| pick(*i))
            .map(|(_, &t)| t)
            .collect();
        let b: Vec<f64> = base_thr
            .iter()
            .enumerate()
            .filter(|(i, _)| pick(*i))
            .map(|(_, &t)| t)
            .collect();
        if a.is_empty() {
            println!("{g:<12} {:>9}", "-");
        } else {
            println!("{g:<12} {:>9.3}", harmonic_mean(&a) / harmonic_mean(&b));
        }
    }
    println!();
    println!("paper reference: Selected ~1.28, Others ~1.02");
    opts.save("fig10", &results)?;
    opts.finish_trace("fig10")?;
    Ok(())
}
