//! Development probe: sanity-check the simulator's qualitative shapes on
//! a few matrices before running the full figure sweeps. Not part of the
//! paper's artifact set, but useful when tuning the machine model.

use asap_bench::{run_spmv, Variant, PAPER_DISTANCE};
use asap_ir::AsapError;
use asap_matrices::gen;
use asap_sim::{GracemontConfig, PrefetcherConfig};
use std::time::Instant;

fn main() {
    if let Err(e) = real_main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), AsapError> {
    let cfg = GracemontConfig::scaled();
    let matrices = [
        ("er-300k", gen::erdos_renyi(300_000, 8, 51), true),
        ("road-500k", gen::road_network(500_000, 31), true),
        ("banded-400k", gen::banded(400_000, 4, 71), false),
    ];
    let variants = [
        Variant::Baseline,
        Variant::Asap {
            distance: PAPER_DISTANCE,
        },
        Variant::AinsworthJones {
            distance: PAPER_DISTANCE,
        },
    ];
    let hw = [
        ("default", PrefetcherConfig::hw_default()),
        ("optimized", PrefetcherConfig::optimized_spmv()),
        ("alloff", PrefetcherConfig::all_off()),
    ];
    println!(
        "{:<14} {:<10} {:<10} {:>8} {:>10} {:>8} {:>10} {:>10} {:>10}",
        "matrix", "variant", "hw", "mpki", "thrpt", "wall_s", "swpf_drop", "hwpf", "stall%"
    );
    for (name, tri, unstructured) in &matrices {
        for v in &variants {
            for (hw_name, pf) in &hw {
                let t0 = Instant::now();
                let r = run_spmv(tri, name, "probe", *unstructured, *v, *pf, hw_name, cfg)?;
                println!(
                    "{:<14} {:<10} {:<10} {:>8.2} {:>10.0} {:>8.2} {:>10} {:>10} {:>9.1}%",
                    name,
                    r.variant,
                    hw_name,
                    r.l2_mpki,
                    r.throughput,
                    t0.elapsed().as_secs_f64(),
                    r.sw_pf_dropped,
                    r.hw_pf_issued,
                    100.0 * r.stall_cycles as f64 / r.cycles as f64,
                );
            }
        }
        println!();
    }
    Ok(())
}
