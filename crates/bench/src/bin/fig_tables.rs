//! Tables 1 and 2: the experimental-platform configuration and the
//! hardware-prefetcher inventory, as encoded in the simulator.

use asap_sim::{table2, GracemontConfig, PrefetcherConfig};

fn print_table1(cfg: &GracemontConfig, label: &str) {
    println!("## Table 1 ({label} preset): system configuration");
    println!("CPU model            | Gracemont-like simulated core");
    println!("Frequency            | {:.1} GHz", cfg.freq_hz as f64 / 1e9);
    println!("Retire width         | {} instructions/cycle", cfg.ipc_base);
    println!(
        "L1D / L2 / L3        | {} KB / {} KB / {} MB",
        cfg.l1.size_bytes / 1024,
        cfg.l2.size_bytes / 1024,
        cfg.l3.size_bytes / 1024 / 1024
    );
    println!(
        "Latencies (L1/L2/L3) | {} / {} / {} cycles",
        cfg.l1.latency, cfg.l2.latency, cfg.l3.latency
    );
    println!("MSHRs (L1/L2)        | {} / {}", cfg.l1_mshrs, cfg.l2_mshrs);
    println!(
        "DRAM                 | {} cycles latency, 1 line / {} cycles (~{:.1} GB/s)",
        cfg.dram_latency,
        cfg.dram_line_interval,
        cfg.freq_hz as f64 * 64.0 / cfg.dram_line_interval as f64 / 1e9
    );
    println!(
        "OoO model            | overlap window {} cycles, MLP width {}, FP op {} cycles",
        cfg.overlap_cycles, cfg.mlp_width, cfg.fp_op_cycles
    );
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "table1" || which == "all" {
        print_table1(&GracemontConfig::paper(), "paper");
        print_table1(&GracemontConfig::scaled(), "scaled evaluation");
    }
    if which == "table2" || which == "all" {
        println!("## Table 2: hardware prefetchers, SpMV-optimized setting");
        println!("{}", table2(&PrefetcherConfig::optimized_spmv()));
        println!("## Table 2: hardware prefetchers, SpMM-optimized setting");
        println!("{}", table2(&PrefetcherConfig::optimized_spmm()));
    }
}
