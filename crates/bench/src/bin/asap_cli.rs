//! `asap_cli` — run SpMV/SpMM on any MatrixMarket file (or a named
//! generator) under any variant and prefetcher configuration, printing
//! the PMU-style counters. The "try it on your own matrix" entry point.
//!
//! ```sh
//! asap_cli --matrix path/to/matrix.mtx --kernel spmv --variant asap \
//!          --hw optimized --distance 45
//! asap_cli --gen rmat:16:8 --kernel spmm --variant aj
//! asap_cli --sweep path/to/dir --variant asap   # skip-and-report sweep
//! asap_cli profile --gen er:4096:8              # span tree + per-site table
//! asap_cli serve --addr 127.0.0.1:7070          # compile-and-execute daemon
//! ```

use asap_bench::{
    run_spmm, run_spmm_budgeted, run_spmv, run_spmv_budgeted, sweep_spmv_dir, Variant,
    SPMM_COLS_F64,
};
use asap_ir::{Budget, ExecProfile, TraceModel};
use asap_matrices::{gen, read_matrix_market, Triplets};
use asap_obs::TeeModel;
use asap_sim::{GracemontConfig, Machine, PrefetcherConfig, Rates};
use asap_sparsifier::KernelSpec;
use asap_tensor::{DenseTensor, Format, SparseTensor, ValueKind};
use std::io::BufReader;
use std::path::PathBuf;

/// Cap on recorded trace events in profile mode: bounds memory on huge
/// matrices while keeping the effectiveness window representative.
const PROFILE_TRACE_EVENTS: usize = 2_000_000;

enum Input {
    Matrix(Triplets, String),
    Sweep(PathBuf),
}

struct Args {
    input: Input,
    kernel: String,
    variant: Variant,
    hw: (String, PrefetcherConfig),
    paper_caches: bool,
    fuel: Option<u64>,
    deadline_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: asap_cli (--matrix FILE.mtx | --gen KIND:ARGS | --sweep DIR) \
         [--kernel spmv|spmm] [--variant baseline|asap|aj] \
         [--distance N] [--hw default|optimized|off] [--paper-caches] \
         [--fuel N] [--deadline-ms N]\n\
         \x20      asap_cli profile (--matrix FILE.mtx | --gen KIND:ARGS) \
         [--kernel spmv|spmm] [--variant baseline|asap|aj] [--distance N] \
         [--hw default|optimized|off] [--trace-out PATH.jsonl]\n\
         \x20      asap_cli serve [--addr HOST:PORT] [--workers N] [--queue-bound N] \
         [--size tiny|small|full] [--deadline-ms N] [--crash-journal PATH.jsonl]\n\
         [--io-timeout-ms N] [--store-bytes N] [--tenant-store-bytes N] \
         [--tenant-rps F] [--tenant-burst F] [--tenant-queue-bound N] [--job-bound N] \
         [--exec-bytes N] [--tenant-weight NAME:W]... [--max-tenants N] \
         [--no-telemetry] [--slo-ms N] [--flight-ring N] [--flight-retain N] \
         [--access-log PATH.jsonl]\n\
         generators: rmat:SCALE:DEG  er:N:DEG  road:N  banded:N:BAND  powerlaw:N:DEG"
    );
    std::process::exit(2);
}

/// Parse a generator spec like `er:4096:8`. Malformed specs (missing or
/// non-numeric fields) print the usage instead of panicking on an index.
fn parse_gen(spec: &str) -> (String, Triplets) {
    let parts: Vec<&str> = spec.split(':').collect();
    let p = |i: usize| -> usize {
        parts
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("generator spec {spec}: field {i} missing or not a number");
                usage()
            })
    };
    let tri = match parts.first().copied() {
        Some("rmat") => gen::rmat(p(1) as u32, p(2), 1),
        Some("er") => gen::erdos_renyi(p(1), p(2), 1),
        Some("road") => gen::road_network(p(1), 1),
        Some("banded") => gen::banded(p(1), p(2), 1),
        Some("powerlaw") => gen::power_law(p(1), p(2), 1.0, 1),
        _ => usage(),
    };
    let mut tri = tri;
    devalue_binary(&mut tri);
    (spec.to_string(), tri)
}

/// Give binary (pattern) matrices deterministic non-trivial f64 values.
fn devalue_binary(tri: &mut Triplets) {
    if tri.binary {
        for (i, v) in tri.vals.iter_mut().enumerate() {
            *v = 0.25 + (i % 7) as f64 * 0.1;
        }
        tri.binary = false;
    }
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut input = None;
    let mut kernel = "spmv".to_string();
    let mut variant_name = "asap".to_string();
    let mut distance = 45usize;
    let mut hw_name = "optimized".to_string();
    let mut paper_caches = false;
    let mut fuel = None;
    let mut deadline_ms = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--matrix" => {
                let path = args.next().unwrap_or_else(|| usage());
                let f = std::fs::File::open(&path).unwrap_or_else(|e| {
                    eprintln!("cannot open {path}: {e}");
                    std::process::exit(1);
                });
                let t = read_matrix_market(BufReader::new(f)).unwrap_or_else(|e| {
                    eprintln!("cannot parse {path}: {e}");
                    std::process::exit(1);
                });
                let mut t = t;
                devalue_binary(&mut t);
                input = Some(Input::Matrix(t, path));
            }
            "--gen" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let (n, t) = parse_gen(&spec);
                input = Some(Input::Matrix(t, n));
            }
            "--sweep" => {
                let dir = args.next().unwrap_or_else(|| usage());
                input = Some(Input::Sweep(PathBuf::from(dir)));
            }
            "--kernel" => kernel = args.next().unwrap_or_else(|| usage()),
            "--variant" => variant_name = args.next().unwrap_or_else(|| usage()),
            "--distance" => {
                distance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--hw" => hw_name = args.next().unwrap_or_else(|| usage()),
            "--paper-caches" => paper_caches = true,
            "--fuel" => {
                fuel = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => usage(),
        }
    }
    let input = input.unwrap_or_else(|| usage());
    let variant = match variant_name.as_str() {
        "baseline" => Variant::Baseline,
        "asap" => Variant::Asap { distance },
        "aj" => Variant::AinsworthJones { distance },
        _ => usage(),
    };
    let hw = match hw_name.as_str() {
        "default" => PrefetcherConfig::hw_default(),
        "optimized" => {
            if kernel == "spmm" {
                PrefetcherConfig::optimized_spmm()
            } else {
                PrefetcherConfig::optimized_spmv()
            }
        }
        "off" => PrefetcherConfig::all_off(),
        _ => usage(),
    };
    Args {
        input,
        kernel,
        variant,
        hw: (hw_name, hw),
        paper_caches,
        fuel,
        deadline_ms,
    }
}

/// `asap_cli profile`: run one matrix with the full observability stack
/// on — span recorder, metrics registry, trace-based prefetch
/// effectiveness, and the VM's per-opcode execution profile — and print
/// the lot. `--trace-out` additionally dumps the JSONL trace.
fn profile_main(args: Vec<String>) {
    // Enable the recorder before any instrumented work (matrix parse,
    // compile, execution) so the span tree covers every stage.
    asap_obs::reset_all();
    asap_obs::set_enabled(true);

    let mut input: Option<(Triplets, String)> = None;
    let mut kernel = "spmv".to_string();
    let mut variant_name = "asap".to_string();
    let mut distance = 45usize;
    let mut hw_name = "optimized".to_string();
    let mut paper_caches = false;
    let mut trace_out: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--matrix" => {
                let path = it.next().unwrap_or_else(|| usage());
                let span = asap_obs::span_with("parse.matrix", || vec![("matrix", path.clone())]);
                let f = std::fs::File::open(&path).unwrap_or_else(|e| {
                    eprintln!("cannot open {path}: {e}");
                    std::process::exit(1);
                });
                let mut t = read_matrix_market(BufReader::new(f)).unwrap_or_else(|e| {
                    eprintln!("cannot parse {path}: {e}");
                    std::process::exit(1);
                });
                devalue_binary(&mut t);
                span.attr("nnz", t.nnz());
                input = Some((t, path));
            }
            "--gen" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let span = asap_obs::span_with("parse.matrix", || vec![("matrix", spec.clone())]);
                let (n, t) = parse_gen(&spec);
                span.attr("nnz", t.nnz());
                input = Some((t, n));
            }
            "--kernel" => kernel = it.next().unwrap_or_else(|| usage()),
            "--variant" => variant_name = it.next().unwrap_or_else(|| usage()),
            "--distance" => {
                distance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--hw" => hw_name = it.next().unwrap_or_else(|| usage()),
            "--paper-caches" => paper_caches = true,
            "--trace-out" => trace_out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    let (tri, name) = input.unwrap_or_else(|| usage());
    let variant = match variant_name.as_str() {
        "baseline" => Variant::Baseline,
        "asap" => Variant::Asap { distance },
        "aj" => Variant::AinsworthJones { distance },
        _ => usage(),
    };
    let hw = match hw_name.as_str() {
        "default" => PrefetcherConfig::hw_default(),
        "optimized" if kernel == "spmm" => PrefetcherConfig::optimized_spmm(),
        "optimized" => PrefetcherConfig::optimized_spmv(),
        "off" => PrefetcherConfig::all_off(),
        _ => usage(),
    };
    let cfg = if paper_caches {
        GracemontConfig::paper()
    } else {
        GracemontConfig::scaled()
    };

    let die = |stage: &str, e: asap_ir::AsapError| -> ! {
        eprintln!("{stage} failed [{}]: {e}", e.kind());
        std::process::exit(1);
    };

    println!(
        "matrix {} : {}x{}, {} nnz",
        name,
        tri.nrows,
        tri.ncols,
        tri.nnz()
    );
    let coo = tri.try_to_coo_f64().unwrap_or_else(|e| die("convert", e));
    let sparse =
        SparseTensor::try_from_coo(&coo, Format::csr()).unwrap_or_else(|e| die("convert", e));
    let spec = match kernel.as_str() {
        "spmv" => KernelSpec::spmv(ValueKind::F64),
        "spmm" => KernelSpec::spmm(ValueKind::F64),
        _ => usage(),
    };
    let ck = asap_core::compile_cached(
        &spec,
        sparse.format(),
        sparse.index_width(),
        &variant.strategy(),
    )
    .unwrap_or_else(|e| die("compile", e));
    for w in &ck.warnings {
        eprintln!("warning: {w}");
    }

    // One execution feeds both views: the simulator's timing counters
    // and the trace the effectiveness analyzer joins against.
    let mut machine = Machine::new(cfg, hw);
    let mut trace = TraceModel::with_capacity_limit(PROFILE_TRACE_EVENTS);
    let x: Vec<f64> = (0..tri.ncols)
        .map(|i| 0.25 + (i % 31) as f64 * 0.125)
        .collect();
    let dense_c = DenseTensor::from_f64(
        vec![tri.ncols, SPMM_COLS_F64],
        (0..tri.ncols * SPMM_COLS_F64)
            .map(|i| 0.5 + (i % 13) as f64 * 0.25)
            .collect(),
    );
    {
        let mut tee = TeeModel::new(&mut machine, &mut trace);
        match kernel.as_str() {
            "spmv" => {
                asap_core::run_spmv_f64_with(&ck, &sparse, &x, &mut tee)
                    .map(|_| ())
                    .unwrap_or_else(|e| die("run", e));
            }
            _ => {
                asap_core::run_spmm_f64_with(&ck, &sparse, &dense_c, &mut tee)
                    .map(|_| ())
                    .unwrap_or_else(|e| die("run", e));
            }
        }
    }
    let counters = machine.counters();
    let eff = asap_obs::analyze_with_counters(&trace, &counters);
    let labels = asap_obs::site_labels(&ck.kernel);

    // Per-opcode VM profile: a second bytecode run (NullModel — the
    // timing view already exists) with the PROFILE monomorphization on.
    let mut vm_profile = ExecProfile::new();
    let mut profiled = false;
    if ck.program.is_some() {
        let mut null = asap_ir::NullModel;
        let outcome = match kernel.as_str() {
            "spmv" => {
                let cx = DenseTensor::from_f64(vec![tri.ncols], x.clone());
                let mut out = DenseTensor::zeros(ValueKind::F64, vec![tri.nrows]);
                asap_core::run_profiled(&ck, &sparse, &[&cx], &mut out, &mut null, &mut vm_profile)
            }
            _ => {
                let mut out = DenseTensor::zeros(ValueKind::F64, vec![tri.nrows, SPMM_COLS_F64]);
                asap_core::run_profiled(
                    &ck,
                    &sparse,
                    &[&dense_c],
                    &mut out,
                    &mut null,
                    &mut vm_profile,
                )
            }
        };
        match outcome {
            Ok(()) => profiled = true,
            Err(e) => eprintln!("vm profile skipped [{}]: {e}", e.kind()),
        }
    }

    asap_obs::set_enabled(false);
    let spans = asap_obs::snapshot_spans();

    println!("\n# span tree (wall-clock)");
    print!("{}", asap_obs::render_span_tree_timed(&spans));
    let metrics = asap_obs::metrics_snapshot();
    println!("\n# metrics");
    print!("{}", asap_obs::render_metrics(&metrics));
    if profiled {
        println!("\n# VM opcode profile (bytecode engine)");
        print!("{}", vm_profile.render());
    } else {
        println!("\n# VM opcode profile: kernel has no lowered program (tree-walk only)");
    }
    println!("\n# prefetch effectiveness (per injection site)");
    print!("{}", asap_obs::render_site_table(&eff, &labels));
    let rates = Rates::of(&counters).with_sw_pf_effectiveness(
        eff.total_useful(),
        eff.total_issued(),
        eff.covered_loads,
        eff.demand_loads,
    );
    println!("sw pf accuracy : {:.1}%", 100.0 * rates.sw_pf_accuracy);
    println!("sw pf coverage : {:.1}%", 100.0 * rates.sw_pf_coverage);
    println!(
        "cycles {} / instructions {} (IPC {:.2})",
        counters.cycles, counters.instructions, rates.ipc
    );

    if let Some(path) = trace_out {
        let manifest = asap_obs::RunManifest::new("asap_cli profile")
            .with("matrix", &name)
            .with("kernel", &kernel)
            .with("variant", variant.label())
            .with("hw", &hw_name)
            .with("distance", distance);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match asap_obs::write_jsonl(&path, &manifest, &spans, &metrics, Some(&eff)) {
            Ok(()) => eprintln!("wrote trace {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// `asap_cli serve`: run the compile-and-execute daemon in the
/// foreground until a client POSTs `/control/shutdown`, then drain
/// queued requests and exit. All kernel/matrix/strategy choices are
/// per-request (see DESIGN.md §11); the flags here size the server.
fn serve_main(args: Vec<String>) {
    use asap_matrices::SizeClass;
    use asap_serve::{ServeConfig, Server};

    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7070".to_string(),
        ..ServeConfig::default()
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--addr" => cfg.addr = val(),
            "--workers" => cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue-bound" => cfg.queue_bound = val().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => cfg.default_deadline_ms = val().parse().unwrap_or_else(|_| usage()),
            "--crash-journal" => cfg.crash_journal = Some(std::path::PathBuf::from(val())),
            "--io-timeout-ms" => cfg.io_timeout_ms = val().parse().unwrap_or_else(|_| usage()),
            "--store-bytes" => cfg.store_bytes = val().parse().unwrap_or_else(|_| usage()),
            "--tenant-store-bytes" => {
                cfg.tenant_store_bytes = val().parse().unwrap_or_else(|_| usage())
            }
            "--tenant-rps" => cfg.tenant_rps = val().parse().unwrap_or_else(|_| usage()),
            "--tenant-burst" => cfg.tenant_burst = val().parse().unwrap_or_else(|_| usage()),
            "--tenant-queue-bound" => {
                cfg.tenant_queue_bound = val().parse().unwrap_or_else(|_| usage())
            }
            "--job-bound" => cfg.job_bound = val().parse().unwrap_or_else(|_| usage()),
            "--exec-bytes" => cfg.exec_bytes = val().parse().unwrap_or_else(|_| usage()),
            "--max-tenants" => cfg.max_tenants = val().parse().unwrap_or_else(|_| usage()),
            "--no-telemetry" => cfg.telemetry = false,
            "--slo-ms" => cfg.slo_ms = val().parse().unwrap_or_else(|_| usage()),
            "--flight-ring" => cfg.flight_ring = val().parse().unwrap_or_else(|_| usage()),
            "--flight-retain" => cfg.flight_retain = val().parse().unwrap_or_else(|_| usage()),
            "--access-log" => cfg.access_log = Some(std::path::PathBuf::from(val())),
            "--tenant-weight" => {
                // NAME:W — a scheduling weight for a known tenant; repeatable.
                let spec = val();
                let Some((name, w)) = spec.rsplit_once(':') else {
                    usage()
                };
                let w: u32 = w.parse().unwrap_or_else(|_| usage());
                cfg.tenant_weights.push((name.to_string(), w));
            }
            "--size" => {
                cfg.size = match val().as_str() {
                    "tiny" => SizeClass::Tiny,
                    "small" => SizeClass::Small,
                    "full" => SizeClass::Full,
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    if cfg.workers == 0 || cfg.queue_bound == 0 {
        usage();
    }
    let server = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        std::process::exit(1);
    });
    println!("asap-serve listening on {}", server.addr());
    println!(
        "POST /v1/run | GET /healthz | GET /metrics | GET /debug/requests | \
         GET /debug/trace/<id> | POST /control/shutdown"
    );
    server.run_until_drained();
    println!("drained; goodbye");
}

fn main() {
    {
        let mut args = std::env::args().skip(1).peekable();
        if args.peek().map(String::as_str) == Some("profile") {
            args.next();
            profile_main(args.collect());
            return;
        }
        if args.peek().map(String::as_str) == Some("serve") {
            args.next();
            serve_main(args.collect());
            return;
        }
    }
    let a = parse_args();
    let cfg = if a.paper_caches {
        GracemontConfig::paper()
    } else {
        GracemontConfig::scaled()
    };

    let (tri, name) = match a.input {
        Input::Sweep(dir) => {
            let report =
                sweep_spmv_dir(&dir, a.variant, a.hw.1, &a.hw.0, cfg).unwrap_or_else(|e| {
                    eprintln!("sweep failed: {e}");
                    std::process::exit(1);
                });
            print!("{}", report.summary());
            for r in &report.results {
                println!(
                    "{:<24} {:>12.0} nnz/ms  {:>8.2} MPKI{}",
                    r.matrix,
                    r.throughput,
                    r.l2_mpki,
                    if r.warnings.is_empty() {
                        String::new()
                    } else {
                        format!("  [{} warning(s)]", r.warnings.len())
                    }
                );
            }
            // A sweep that skipped matrices still exits 0: skipping is
            // the graceful-degradation contract, not a failure.
            return;
        }
        Input::Matrix(tri, name) => (tri, name),
    };

    println!(
        "matrix {} : {}x{}, {} nnz",
        name,
        tri.nrows,
        tri.ncols,
        tri.nnz()
    );
    let governed = a.fuel.is_some() || a.deadline_ms.is_some();
    let budget = {
        let mut b = Budget::unlimited();
        if let Some(f) = a.fuel {
            b = b.with_fuel(f);
        }
        if let Some(ms) = a.deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        b
    };
    let outcome = match a.kernel.as_str() {
        "spmv" if governed => run_spmv_budgeted(
            &tri, &name, "cli", true, a.variant, a.hw.1, &a.hw.0, cfg, &budget,
        ),
        "spmv" => run_spmv(&tri, &name, "cli", true, a.variant, a.hw.1, &a.hw.0, cfg),
        "spmm" if governed => run_spmm_budgeted(
            &tri,
            &name,
            "cli",
            true,
            SPMM_COLS_F64,
            a.variant,
            a.hw.1,
            &a.hw.0,
            cfg,
            &budget,
        ),
        "spmm" => run_spmm(
            &tri,
            &name,
            "cli",
            true,
            SPMM_COLS_F64,
            a.variant,
            a.hw.1,
            &a.hw.0,
            cfg,
        ),
        _ => usage(),
    };
    let r = match outcome {
        Ok(r) => r,
        // Governed termination is the budget working as designed: report
        // the typed trap and exit cleanly (distinct from a failed run).
        Err(e) if e.kind() == "budget" => {
            println!("budget exceeded: {e}");
            return;
        }
        Err(e) => {
            eprintln!("run failed [{}]: {e}", e.kind());
            std::process::exit(1);
        }
    };
    for w in &r.warnings {
        eprintln!("warning: {w}");
    }
    println!("kernel        : {}", r.kernel);
    println!("variant       : {}", r.variant);
    println!("hw prefetchers: {}", r.hw_config);
    println!("cycles        : {}", r.cycles);
    println!("instructions  : {}", r.instructions);
    println!("throughput    : {:.0} nnz/ms", r.throughput);
    println!("L2 MPKI       : {:.2}", r.l2_mpki);
    println!(
        "sw prefetches : {} issued, {} dropped",
        r.sw_pf_issued, r.sw_pf_dropped
    );
    println!("hw prefetches : {} issued", r.hw_pf_issued);
    println!("DRAM traffic  : {:.1} MB", r.dram_bytes as f64 / 1e6);
    println!(
        "stall cycles  : {} ({:.1}%)",
        r.stall_cycles,
        100.0 * r.stall_cycles as f64 / r.cycles as f64
    );
}
