//! Equal-Work harmonic-mean Speedup (EWS), per Eeckhout 2024 — the
//! paper's aggregation metric (Section 5): summarize per-matrix
//! throughputs with a harmonic mean and report the ratio.

/// Harmonic mean of strictly-positive values.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "harmonic mean of an empty set");
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "harmonic mean requires positive values"
    );
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// EWS of variant `a` over variant `b`: ratio of harmonic means of their
/// per-matrix throughputs (same matrix order in both slices).
pub fn ews_speedup(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "EWS compares matched throughput sets");
    harmonic_mean(a) / harmonic_mean(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 3.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_dominated_by_small_values() {
        // One slow matrix drags the mean down much more than the
        // geometric mean would — the paper's argument for EWS.
        let hm = harmonic_mean(&[100.0, 1.0]);
        assert!(hm < 2.0);
    }

    #[test]
    fn ews_of_identical_sets_is_one() {
        let t = [3.0, 5.0, 7.0];
        assert!((ews_speedup(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ews_uniform_speedup_is_preserved() {
        let b = [2.0, 4.0, 8.0];
        let a: Vec<f64> = b.iter().map(|x| 1.5 * x).collect();
        assert!((ews_speedup(&a, &b) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_throughput() {
        harmonic_mean(&[1.0, 0.0]);
    }
}
