//! # asap-bench — experiment harness regenerating every table and figure
//!
//! Shared machinery for the `fig*` binaries: running a kernel variant on
//! a matrix under a simulator configuration, collecting paper-style
//! metrics (throughput in nnz/ms, L2 MPKI), and the Equal-Work harmonic
//! mean Speedup (EWS) aggregation of Section 5.

pub mod checkpoint;
pub mod cli;
pub mod ews;
pub mod pool;
pub mod predict;
pub mod run;
pub mod table;

pub use checkpoint::{cell_key, Checkpoint};
pub use cli::{linear_fit, Options, UsageError};
pub use ews::{ews_speedup, harmonic_mean};
pub use pool::{
    auto_threads, in_worker, matrix_threads, parallel_map, parallel_map_isolated,
    parallel_map_isolated_labeled, skip_report, JobFailure,
};
pub use predict::{aj_coverage, predict_asap_over_aj, predicted_advantage};
pub use run::{
    results_to_json, run_spmm, run_spmm_budgeted, run_spmm_threads, run_spmv, run_spmv_budgeted,
    run_spmv_threads, sweep_spmv_dir, ExperimentResult, SkippedMatrix, SweepReport, Variant,
};
pub use table::{fmt_f64, markdown_table};

/// Paper-fixed prefetch distance (Section 4.3).
pub const PAPER_DISTANCE: usize = 45;

/// Dense columns for SpMM with f64 values: one cache line per row
/// (Section 5.2).
pub const SPMM_COLS_F64: usize = 8;
