//! Tiny argument parsing and result persistence shared by the `fig*`
//! binaries (no external CLI crate needed).

use crate::run::{results_to_json, ExperimentResult};
use asap_matrices::SizeClass;
use std::fmt;
use std::path::PathBuf;

/// A command-line usage error: the message to print next to the usage
/// string. Distinct from `AsapError` — nothing downstream of argument
/// parsing ever sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (usage: [--size tiny|small|full] [--out <path.json>] \
             [--fuel N] [--deadline-ms N] [--resume] [--no-checkpoint] \
             [--trace-out <path.jsonl>])",
            self.0
        )
    }
}

impl std::error::Error for UsageError {}

/// Common options: `--size tiny|small|full`, `--out <path.json>`, the
/// resource-governance budget (`--fuel`, `--deadline-ms`), and sweep
/// checkpointing (`--resume`, `--no-checkpoint`).
#[derive(Debug, Clone)]
pub struct Options {
    pub size: SizeClass,
    pub out: Option<PathBuf>,
    /// Interpreter-step (fuel) limit per run, if any.
    pub fuel: Option<u64>,
    /// Wall-clock deadline per run in milliseconds, if any.
    pub deadline_ms: Option<u64>,
    /// Resume a killed sweep from its checkpoint journal.
    pub resume: bool,
    /// Disable checkpoint journaling entirely.
    pub no_checkpoint: bool,
    /// Dump the observability trace (spans, metrics) as JSONL here.
    pub trace_out: Option<PathBuf>,
}

impl Options {
    /// Parse `std::env::args`, printing the usage error and exiting with
    /// status 2 on bad input (the binaries' single user-facing boundary).
    pub fn from_args() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    pub fn parse(args: impl Iterator<Item = String>) -> Result<Options, UsageError> {
        let mut o = Options {
            size: SizeClass::Full,
            out: None,
            fuel: None,
            deadline_ms: None,
            resume: false,
            no_checkpoint: false,
            trace_out: None,
        };
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--size" => {
                    let v = it
                        .next()
                        .ok_or_else(|| UsageError("--size needs a value".into()))?;
                    o.size = match v.as_str() {
                        "tiny" => SizeClass::Tiny,
                        "small" => SizeClass::Small,
                        "full" => SizeClass::Full,
                        other => {
                            return Err(UsageError(format!(
                                "unknown size {other} (tiny|small|full)"
                            )))
                        }
                    };
                }
                "--out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| UsageError("--out needs a path".into()))?;
                    o.out = Some(PathBuf::from(v));
                }
                "--fuel" => o.fuel = Some(parse_u64(&mut it, "--fuel")?),
                "--deadline-ms" => o.deadline_ms = Some(parse_u64(&mut it, "--deadline-ms")?),
                "--resume" => o.resume = true,
                "--no-checkpoint" => o.no_checkpoint = true,
                "--trace-out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| UsageError("--trace-out needs a path".into()))?;
                    o.trace_out = Some(PathBuf::from(v));
                }
                other => return Err(UsageError(format!("unknown argument {other}"))),
            }
        }
        if o.resume && o.no_checkpoint {
            return Err(UsageError(
                "--resume and --no-checkpoint are mutually exclusive".into(),
            ));
        }
        Ok(o)
    }

    /// The resource budget the flags describe: unlimited unless `--fuel`
    /// and/or `--deadline-ms` was given.
    pub fn budget(&self) -> asap_ir::Budget {
        let mut b = asap_ir::Budget::unlimited();
        if let Some(fuel) = self.fuel {
            b = b.with_fuel(fuel);
        }
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline_ms(ms);
        }
        b
    }

    /// The checkpoint journal for figure `fig`: next to `--out` when
    /// given (`<out>.checkpoint.jsonl`), else
    /// `results/<fig>.checkpoint.jsonl`; disabled by `--no-checkpoint`.
    pub fn checkpoint(&self, fig: &str) -> Result<crate::checkpoint::Checkpoint, UsageError> {
        if self.no_checkpoint {
            return Ok(crate::checkpoint::Checkpoint::disabled());
        }
        let path = match &self.out {
            Some(out) => out.with_extension("checkpoint.jsonl"),
            None => PathBuf::from("results").join(format!("{fig}.checkpoint.jsonl")),
        };
        let ck = crate::checkpoint::Checkpoint::open(&path, self.resume)
            .map_err(|e| UsageError(format!("checkpoint: {e}")))?;
        if self.resume {
            eprintln!(
                "resuming from {}: {} cell(s) already done",
                path.display(),
                ck.resumed_cells()
            );
        }
        Ok(ck)
    }

    /// The provenance manifest this invocation should stamp into its
    /// results and trace files: tool name plus every flag that shapes
    /// the run.
    pub fn manifest(&self, tool: &str) -> asap_obs::RunManifest {
        let mut m = asap_obs::RunManifest::new(tool).with("size", format!("{:?}", self.size));
        if let Some(fuel) = self.fuel {
            m.push("fuel", fuel);
        }
        if let Some(ms) = self.deadline_ms {
            m.push("deadline_ms", ms);
        }
        if self.resume {
            m.push("resume", "true");
        }
        if self.no_checkpoint {
            m.push("no_checkpoint", "true");
        }
        if let Some(p) = &self.trace_out {
            m.push("trace_out", p.display());
        }
        m
    }

    /// Turn the span recorder on when `--trace-out` was given. Call once
    /// at binary startup, before any instrumented work runs.
    pub fn init_trace(&self) {
        if self.trace_out.is_some() {
            asap_obs::reset_all();
            asap_obs::set_enabled(true);
        }
    }

    /// Write the JSONL trace dump if `--trace-out` was given: manifest
    /// line first, then every recorded span, counter, and histogram.
    /// Call once at the end of `main`.
    pub fn finish_trace(&self, tool: &str) -> std::io::Result<()> {
        if let Some(path) = &self.trace_out {
            asap_obs::set_enabled(false);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let spans = asap_obs::take_spans();
            let metrics = asap_obs::metrics_snapshot();
            asap_obs::write_jsonl(path, &self.manifest(tool), &spans, &metrics, None)?;
            eprintln!("wrote trace {}", path.display());
        }
        Ok(())
    }

    /// Dump results as JSON next to printing the table, stamped with the
    /// run manifest: `{"manifest": {...}, "results": [...]}`.
    pub fn save(&self, tool: &str, results: &[ExperimentResult]) -> std::io::Result<()> {
        if let Some(path) = &self.out {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let body = format!(
                "{{\n\"manifest\": {},\n\"results\": {}}}\n",
                self.manifest(tool).to_json(),
                results_to_json(results)
            );
            std::fs::write(path, body)?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}

fn parse_u64(
    it: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<u64, UsageError> {
    it.next()
        .ok_or_else(|| UsageError(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| UsageError(format!("{flag} needs a non-negative integer")))
}

/// Least-squares linear fit `y = slope*x + intercept`, with R².
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_size_and_out() {
        let o = Options::parse(
            ["--size", "tiny", "--out", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(o.size, SizeClass::Tiny);
        assert_eq!(o.out.unwrap().to_str().unwrap(), "/tmp/x.json");
    }

    #[test]
    fn default_is_full() {
        let o = Options::parse(std::iter::empty()).unwrap();
        assert_eq!(o.size, SizeClass::Full);
        assert!(o.out.is_none());
    }

    #[test]
    fn fit_recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.7 * x + 0.9).collect();
        let (s, i, r2) = linear_fit(&xs, &ys);
        assert!((s - 0.7).abs() < 1e-12);
        assert!((i - 0.9).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_size_without_panicking() {
        let err = Options::parse(["--size", "huge"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.to_string().contains("unknown size huge"));
        assert!(err.to_string().contains("usage:"));
    }

    #[test]
    fn rejects_dangling_flag() {
        let err = Options::parse(["--out"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.to_string().contains("--out needs a path"));
    }

    #[test]
    fn parses_budget_and_checkpoint_flags() {
        let o = Options::parse(
            ["--fuel", "1000", "--deadline-ms", "250", "--resume"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(o.fuel, Some(1000));
        assert_eq!(o.deadline_ms, Some(250));
        assert!(o.resume);
        assert!(!o.no_checkpoint);
        // The default budget is unlimited; these flags make it finite.
        let d = Options::parse(std::iter::empty()).unwrap();
        assert!(d.fuel.is_none() && d.deadline_ms.is_none());
    }

    #[test]
    fn rejects_bad_budget_values_and_conflicting_flags() {
        let err = Options::parse(["--fuel", "lots"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.to_string().contains("non-negative integer"), "{err}");
        let err = Options::parse(
            ["--resume", "--no-checkpoint"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn parses_trace_out_and_stamps_manifest() {
        let o = Options::parse(
            [
                "--size",
                "tiny",
                "--fuel",
                "77",
                "--trace-out",
                "/tmp/t.jsonl",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(
            o.trace_out.as_ref().unwrap().to_str().unwrap(),
            "/tmp/t.jsonl"
        );
        let j = o.manifest("fig6").to_json();
        assert!(j.contains("\"tool\":\"fig6\""), "{j}");
        assert!(j.contains("\"size\":\"Tiny\""), "{j}");
        assert!(j.contains("\"fuel\":\"77\""), "{j}");
        assert!(j.contains("\"trace_out\":\"/tmp/t.jsonl\""), "{j}");
        let err = Options::parse(["--trace-out"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.to_string().contains("--trace-out needs a path"));
    }

    #[test]
    fn save_stamps_the_manifest_into_results_json() {
        let dir = std::env::temp_dir().join("asap-cli-save-test");
        let path = dir.join("out.json");
        let o = Options::parse(
            ["--out", path.to_str().unwrap(), "--no-checkpoint"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        o.save("unit-test", &[]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"manifest\":"), "{body}");
        assert!(body.contains("\"tool\":\"unit-test\""), "{body}");
        assert!(body.contains("\"results\":"), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_path_follows_out() {
        let o = Options::parse(
            ["--out", "/tmp/asap-cli-test/fig7.json", "--no-checkpoint"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        // Disabled checkpoints open nothing on disk.
        let ck = o.checkpoint("fig7").unwrap();
        assert_eq!(ck.resumed_cells(), 0);
    }
}
