//! Tiny argument parsing and result persistence shared by the `fig*`
//! binaries (no external CLI crate needed).

use crate::run::{results_to_json, ExperimentResult};
use asap_matrices::SizeClass;
use std::fmt;
use std::path::PathBuf;

/// A command-line usage error: the message to print next to the usage
/// string. Distinct from `AsapError` — nothing downstream of argument
/// parsing ever sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (usage: [--size tiny|small|full] [--out <path.json>])",
            self.0
        )
    }
}

impl std::error::Error for UsageError {}

/// Common options: `--size tiny|small|full` and `--out <path.json>`.
#[derive(Debug, Clone)]
pub struct Options {
    pub size: SizeClass,
    pub out: Option<PathBuf>,
}

impl Options {
    /// Parse `std::env::args`, printing the usage error and exiting with
    /// status 2 on bad input (the binaries' single user-facing boundary).
    pub fn from_args() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    pub fn parse(args: impl Iterator<Item = String>) -> Result<Options, UsageError> {
        let mut size = SizeClass::Full;
        let mut out = None;
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--size" => {
                    let v = it
                        .next()
                        .ok_or_else(|| UsageError("--size needs a value".into()))?;
                    size = match v.as_str() {
                        "tiny" => SizeClass::Tiny,
                        "small" => SizeClass::Small,
                        "full" => SizeClass::Full,
                        other => {
                            return Err(UsageError(format!(
                                "unknown size {other} (tiny|small|full)"
                            )))
                        }
                    };
                }
                "--out" => {
                    let v = it
                        .next()
                        .ok_or_else(|| UsageError("--out needs a path".into()))?;
                    out = Some(PathBuf::from(v));
                }
                other => return Err(UsageError(format!("unknown argument {other}"))),
            }
        }
        Ok(Options { size, out })
    }

    /// Dump results as JSON next to printing the table.
    pub fn save(&self, results: &[ExperimentResult]) -> std::io::Result<()> {
        if let Some(path) = &self.out {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            std::fs::write(path, results_to_json(results))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}

/// Least-squares linear fit `y = slope*x + intercept`, with R².
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_size_and_out() {
        let o = Options::parse(
            ["--size", "tiny", "--out", "/tmp/x.json"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(o.size, SizeClass::Tiny);
        assert_eq!(o.out.unwrap().to_str().unwrap(), "/tmp/x.json");
    }

    #[test]
    fn default_is_full() {
        let o = Options::parse(std::iter::empty()).unwrap();
        assert_eq!(o.size, SizeClass::Full);
        assert!(o.out.is_none());
    }

    #[test]
    fn fit_recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 0.7 * x + 0.9).collect();
        let (s, i, r2) = linear_fit(&xs, &ys);
        assert!((s - 0.7).abs() < 1e-12);
        assert!((i - 0.9).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_size_without_panicking() {
        let err = Options::parse(["--size", "huge"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.to_string().contains("unknown size huge"));
        assert!(err.to_string().contains("usage:"));
    }

    #[test]
    fn rejects_dangling_flag() {
        let err = Options::parse(["--out"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.to_string().contains("--out needs a path"));
    }
}
