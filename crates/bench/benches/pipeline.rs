//! Criterion benches for every pipeline stage: tensor construction,
//! sparsification, prefetch passes, functional interpretation, and
//! simulated execution. Sized to run quickly (the figure regeneration
//! binaries do the heavy lifting; these track compiler/simulator
//! performance regressions).

use asap_core::{ainsworth_jones, AjConfig, AsapConfig, AsapHook};
use asap_ir::{dce, licm, NullModel};
use asap_matrices::gen;
use asap_sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap_sparsifier::{run, sparsify, KernelSpec};
use asap_tensor::{DenseTensor, Format, IndexWidth, SparseTensor, ValueKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_tensor_build(c: &mut Criterion) {
    let tri = gen::erdos_renyi(10_000, 8, 1).to_coo_f64();
    let mut g = c.benchmark_group("tensor_build");
    g.throughput(Throughput::Elements(tri.nnz() as u64));
    for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
        g.bench_with_input(BenchmarkId::from_parameter(fmt.name()), &fmt, |b, fmt| {
            b.iter(|| SparseTensor::from_coo(&tri, fmt.clone()))
        });
    }
    g.finish();
}

fn bench_sparsify(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparsify");
    for (name, spec, fmt) in [
        ("spmv_csr", KernelSpec::spmv(ValueKind::F64), Format::csr()),
        ("spmv_coo", KernelSpec::spmv(ValueKind::F64), Format::coo()),
        ("spmv_dcsr", KernelSpec::spmv(ValueKind::F64), Format::dcsr()),
        ("spmm_csr", KernelSpec::spmm(ValueKind::F64), Format::csr()),
        ("mttkrp_csf3", KernelSpec::mttkrp(ValueKind::F64), Format::csf(3)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| sparsify(&spec, &fmt, IndexWidth::U32, None).unwrap())
        });
    }
    g.finish();
}

fn bench_passes(c: &mut Criterion) {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let mut g = c.benchmark_group("passes");
    g.bench_function("asap_inject", |b| {
        b.iter(|| {
            let mut hook = AsapHook::new(AsapConfig::paper());
            sparsify(&spec, &Format::csr(), IndexWidth::U32, Some(&mut hook)).unwrap()
        })
    });
    g.bench_function("aj_pass", |b| {
        b.iter(|| {
            let mut k = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
            ainsworth_jones(&mut k.func, &AjConfig::paper())
        })
    });
    g.bench_function("licm_dce", |b| {
        let mut hook = AsapHook::new(AsapConfig::paper());
        let k = sparsify(&spec, &Format::csr(), IndexWidth::U32, Some(&mut hook)).unwrap();
        b.iter(|| {
            let mut f = k.func.clone();
            licm(&mut f);
            dce(&mut f)
        })
    });
    g.finish();
}

fn bench_execution(c: &mut Criterion) {
    let tri = gen::erdos_renyi(20_000, 8, 7);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), sparse.index_width(), None).unwrap();
    let x = DenseTensor::from_f64(vec![20_000], vec![1.0; 20_000]);
    let mut g = c.benchmark_group("execution");
    g.sample_size(10);
    g.throughput(Throughput::Elements(sparse.nnz() as u64));
    g.bench_function("interpret_spmv_null", |b| {
        b.iter(|| {
            let mut out = DenseTensor::zeros(ValueKind::F64, vec![20_000]);
            run(&kernel, &sparse, &[&x], &mut out, &mut NullModel).unwrap()
        })
    });
    g.bench_function("interpret_spmv_simulated", |b| {
        b.iter(|| {
            let mut out = DenseTensor::zeros(ValueKind::F64, vec![20_000]);
            let mut m = Machine::new(GracemontConfig::scaled(), PrefetcherConfig::hw_default());
            run(&kernel, &sparse, &[&x], &mut out, &mut m).unwrap()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tensor_build, bench_sparsify, bench_passes, bench_execution
}
criterion_main!(benches);
