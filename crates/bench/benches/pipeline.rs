//! Timing benches for every pipeline stage: tensor construction,
//! sparsification, prefetch passes, functional interpretation, and
//! simulated execution. Plain `fn main()` harness (no external bench
//! crate): each case is warmed up once, then timed over a fixed number
//! of iterations and reported as median-of-runs nanoseconds.
//!
//! Sized to run quickly — the figure regeneration binaries do the heavy
//! lifting; these track compiler/simulator performance regressions.

use asap_core::{ainsworth_jones, AjConfig, AsapConfig, AsapHook};
use asap_ir::{dce, licm, NullModel};
use asap_matrices::gen;
use asap_sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap_sparsifier::{run, sparsify, KernelSpec};
use asap_tensor::{DenseTensor, Format, IndexWidth, SparseTensor, ValueKind};
use std::time::Instant;

/// Time `f` over `iters` iterations, repeated `runs` times; report the
/// best run's per-iteration nanoseconds (least-noise estimator).
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    const RUNS: usize = 3;
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_iter);
    }
    if best >= 1e6 {
        println!("{name:<40} {:>12.3} ms/iter", best / 1e6);
    } else if best >= 1e3 {
        println!("{name:<40} {:>12.3} us/iter", best / 1e3);
    } else {
        println!("{name:<40} {:>12.0} ns/iter", best);
    }
}

fn bench_tensor_build() {
    let tri = gen::erdos_renyi(10_000, 8, 1).to_coo_f64();
    for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
        let label = format!("tensor_build/{}", fmt.name());
        bench(&label, 20, || {
            let t = SparseTensor::from_coo(&tri, fmt.clone());
            std::hint::black_box(t);
        });
    }
}

fn bench_sparsify() {
    for (name, spec, fmt) in [
        (
            "sparsify/spmv_csr",
            KernelSpec::spmv(ValueKind::F64),
            Format::csr(),
        ),
        (
            "sparsify/spmv_coo",
            KernelSpec::spmv(ValueKind::F64),
            Format::coo(),
        ),
        (
            "sparsify/spmv_dcsr",
            KernelSpec::spmv(ValueKind::F64),
            Format::dcsr(),
        ),
        (
            "sparsify/spmm_csr",
            KernelSpec::spmm(ValueKind::F64),
            Format::csr(),
        ),
        (
            "sparsify/mttkrp_csf3",
            KernelSpec::mttkrp(ValueKind::F64),
            Format::csf(3),
        ),
    ] {
        bench(name, 200, || {
            let k = sparsify(&spec, &fmt, IndexWidth::U32, None).unwrap();
            std::hint::black_box(k);
        });
    }
}

fn bench_passes() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    bench("passes/asap_inject", 200, || {
        let mut hook = AsapHook::new(AsapConfig::paper());
        let k = sparsify(&spec, &Format::csr(), IndexWidth::U32, Some(&mut hook)).unwrap();
        std::hint::black_box(k);
    });
    bench("passes/aj_pass", 200, || {
        let mut k = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
        ainsworth_jones(&mut k.func, &AjConfig::paper());
        std::hint::black_box(k);
    });
    let mut hook = AsapHook::new(AsapConfig::paper());
    let k = sparsify(&spec, &Format::csr(), IndexWidth::U32, Some(&mut hook)).unwrap();
    bench("passes/licm_dce", 200, || {
        let mut f = k.func.clone();
        licm(&mut f);
        dce(&mut f);
        std::hint::black_box(f);
    });
}

fn bench_execution() {
    let tri = gen::erdos_renyi(20_000, 8, 7);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let spec = KernelSpec::spmv(ValueKind::F64);
    let kernel = sparsify(&spec, &Format::csr(), sparse.index_width(), None).unwrap();
    let x = DenseTensor::from_f64(vec![20_000], vec![1.0; 20_000]);
    bench("execution/interpret_spmv_null", 5, || {
        let mut out = DenseTensor::zeros(ValueKind::F64, vec![20_000]);
        run(&kernel, &sparse, &[&x], &mut out, &mut NullModel).unwrap();
        std::hint::black_box(out);
    });
    bench("execution/interpret_spmv_simulated", 3, || {
        let mut out = DenseTensor::zeros(ValueKind::F64, vec![20_000]);
        let mut m = Machine::new(GracemontConfig::scaled(), PrefetcherConfig::hw_default());
        run(&kernel, &sparse, &[&x], &mut out, &mut m).unwrap();
        std::hint::black_box(out);
    });
}

fn main() {
    // `cargo bench -- <filter>` runs only matching groups.
    let filter = std::env::args().nth(1).unwrap_or_default();
    let want = |group: &str| filter.is_empty() || group.contains(&filter);
    println!("{:<40} {:>12}", "bench", "time");
    if want("tensor_build") {
        bench_tensor_build();
    }
    if want("sparsify") {
        bench_sparsify();
    }
    if want("passes") {
        bench_passes();
    }
    if want("execution") {
        bench_execution();
    }
}
