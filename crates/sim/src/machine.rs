//! The execution-driven machine model: a Gracemont-like core attached to
//! the interpreter through [`asap_ir::MemoryModel`].
//!
//! Timing model (documented approximations in DESIGN.md):
//!
//! - non-memory instructions retire at `ipc_base`;
//! - a demand load stalls for `max(0, available − now − overlap)` — the
//!   small OoO window hides short-latency misses but not DRAM;
//! - cache lines are installed at request time with a future
//!   `ready_cycle`, so a later access to an in-flight line stalls only for
//!   the remaining latency (this is how timely prefetches win);
//! - software and hardware prefetches never stall the core, and are
//!   **dropped** when the L2 MSHR file is full — the resource contention
//!   that makes disabling inaccurate hardware prefetchers profitable;
//! - stores retire through a store buffer (no stall) but consume
//!   MSHRs/bandwidth on write-allocate misses.

use crate::cache::{line_of, Cache, Evicted, Probe};
use crate::config::{GracemontConfig, PrefetcherConfig};
use crate::counters::Counters;
use crate::dram::Dram;
use crate::hwpf::{Amp, FillLevel, Ipp, NextLine, PfRequest, Streamer};
use crate::mshr::{Alloc, Mshr};
use crate::multicore::ClockSync;
use crate::tlb::Tlb;
use asap_ir::{MemoryModel, OpId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The shared part of the hierarchy: L3 and the DRAM controller (plus the
/// LLC streamer, which observes L3 traffic). One per machine; shared by
/// all cores in multi-core runs.
#[derive(Debug)]
pub struct Uncore {
    pub l3: Cache,
    pub dram: Dram,
    llc_streamer: Streamer,
    llc_enabled: bool,
    l3_latency: u64,
}

impl Uncore {
    pub fn new(cfg: &GracemontConfig, pf: &PrefetcherConfig) -> Uncore {
        Uncore {
            l3: Cache::new(cfg.l3),
            dram: Dram::new(cfg.dram_latency, cfg.dram_line_interval),
            llc_streamer: Streamer::new(16, FillLevel::L3, 4),
            llc_enabled: pf.llc_streamer,
            l3_latency: cfg.l3.latency,
        }
    }

    /// Shared uncore for a multi-core run.
    pub fn shared(cfg: &GracemontConfig, pf: &PrefetcherConfig) -> Arc<Mutex<Uncore>> {
        Arc::new(Mutex::new(Uncore::new(cfg, pf)))
    }

    fn handle_eviction(&mut self, ev: Option<Evicted>, now: u64, ctr: &mut Counters) {
        if let Some(e) = ev {
            if e.unused_prefetch {
                ctr.pf_unused_evictions += 1;
            }
            if e.dirty {
                self.dram.writeback(now);
                ctr.dram_lines_written += 1;
            }
        }
    }

    /// Fetch a line on behalf of a core. Returns the cycle at which the
    /// data is available to the core. `train` marks L1-originated traffic
    /// (demand or L1 prefetch) that the LLC streamer learns from.
    fn access(
        &mut self,
        line: u64,
        now: u64,
        demand: bool,
        train: bool,
        ctr: &mut Counters,
    ) -> u64 {
        let avail = match self.l3.probe(line, demand) {
            Probe::Hit { ready } => {
                if demand {
                    ctr.l3_hits += 1;
                }
                ready.max(now) + self.l3_latency
            }
            Probe::Miss => {
                if demand {
                    ctr.dram_hits += 1;
                }
                let avail = self.dram.read(now);
                ctr.dram_lines_read += 1;
                let ev = self.l3.install(line, avail, !demand);
                self.handle_eviction(ev, now, ctr);
                avail
            }
        };
        // The LLC streamer observes L1-originated traffic reaching L3 and
        // fills L3 directly (no core MSHRs involved).
        if train && self.llc_enabled {
            let mut reqs = Vec::new();
            self.llc_streamer.on_access(line, &mut reqs);
            for r in reqs {
                ctr.hw_pf_issued += 1;
                if self.l3.peek(r.line).is_some() {
                    ctr.hw_pf_redundant += 1;
                    continue;
                }
                let ready = self.dram.read(now);
                ctr.dram_lines_read += 1;
                let ev = self.l3.install(r.line, ready, true);
                self.handle_eviction(ev, now, ctr);
            }
        }
        avail
    }

    /// A dirty line written back from a core's L2.
    fn writeback_from_l2(&mut self, line: u64, now: u64, ctr: &mut Counters) {
        if self.l3.peek(line).is_some() {
            self.l3.mark_dirty(line);
        } else {
            self.dram.writeback(now);
            ctr.dram_lines_written += 1;
        }
    }
}

/// One simulated core with private L1/L2, attached to a (possibly shared)
/// [`Uncore`]. Implements [`MemoryModel`] so it can be plugged straight
/// into the IR interpreter.
#[derive(Debug)]
pub struct Machine {
    cfg: GracemontConfig,
    pf: PrefetcherConfig,
    cycles: u64,
    instr_rem: u64,
    l1: Cache,
    l2: Cache,
    l1_mshr: Mshr,
    l2_mshr: Mshr,
    uncore: Arc<Mutex<Uncore>>,
    ipp: Ipp,
    l1_nlp: NextLine,
    l2_nlp: NextLine,
    mlc: Streamer,
    amp: Amp,
    hw_queue: Vec<PfRequest>,
    tlb: Tlb,
    ctr: Counters,
    /// Multi-core conservative clock sync (core id, shared clocks).
    sync: Option<(Arc<ClockSync>, usize)>,
    /// Simulated-cycle ceiling: when local cycles pass the cap, the
    /// shared cancellation token is raised so the governing
    /// [`asap_ir::Budget`] traps the run at its next poll.
    cycle_cap: Option<(u64, Arc<AtomicBool>)>,
}

impl Machine {
    /// A single-core machine with its own uncore.
    pub fn new(cfg: GracemontConfig, pf: PrefetcherConfig) -> Machine {
        let uncore = Uncore::shared(&cfg, &pf);
        Machine::with_uncore(cfg, pf, uncore)
    }

    /// A core sharing `uncore` with other cores (multi-threaded runs).
    pub fn with_uncore(
        cfg: GracemontConfig,
        pf: PrefetcherConfig,
        uncore: Arc<Mutex<Uncore>>,
    ) -> Machine {
        Machine {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l1_mshr: Mshr::new(cfg.l1_mshrs),
            l2_mshr: Mshr::new(cfg.l2_mshrs),
            uncore,
            ipp: Ipp::new(2),
            l1_nlp: NextLine::new(FillLevel::L1),
            l2_nlp: NextLine::new(FillLevel::L2),
            mlc: Streamer::new(16, FillLevel::L2, 2),
            amp: Amp::new(),
            hw_queue: Vec::new(),
            tlb: Tlb::new(cfg.tlb),
            cycles: 0,
            instr_rem: 0,
            ctr: Counters::default(),
            sync: None,
            cycle_cap: None,
            cfg,
            pf,
        }
    }

    /// Govern this core by a simulated-cycle ceiling. The machine cannot
    /// trap out of a [`MemoryModel`] callback itself (the trait is
    /// infallible by design — timing never changes semantics), so
    /// crossing the cap raises `cancel` instead; the interpreter's
    /// budget meter observes the token and stops the run with a typed
    /// `Cancelled` trap. With a shared token, one core crossing its cap
    /// winds down every core of a multi-core run.
    pub fn set_cycle_cap(&mut self, max_cycles: u64, cancel: Arc<AtomicBool>) {
        self.cycle_cap = Some((max_cycles, cancel));
    }

    #[inline]
    fn check_cycle_cap(&self) {
        if let Some((cap, tok)) = &self.cycle_cap {
            if self.cycles > *cap {
                tok.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Participate in a multi-core run: bound this core's clock skew
    /// against its peers before every shared-uncore access.
    pub fn attach_clock_sync(&mut self, sync: Arc<ClockSync>, core_id: usize) {
        self.sync = Some((sync, core_id));
    }

    /// Publish the local clock; block if running too far ahead of peers.
    fn sync_uncore(&self) {
        if let Some((s, id)) = &self.sync {
            s.wait_turn(*id, self.cycles);
        }
    }

    pub fn counters(&self) -> Counters {
        let mut c = self.ctr;
        c.cycles = self.cycles;
        c
    }

    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    pub fn config(&self) -> &GracemontConfig {
        &self.cfg
    }

    /// Total DRAM traffic of the whole machine (all cores + prefetchers),
    /// in bytes — the roofline denominator.
    pub fn dram_bytes_total(&self) -> u64 {
        self.uncore
            .lock()
            .expect("uncore lock")
            .dram
            .bytes_transferred()
    }

    fn bump_instr(&mut self, n: u64) {
        self.ctr.instructions += n;
        self.instr_rem += n;
        self.cycles += self.instr_rem / self.cfg.ipc_base;
        self.instr_rem %= self.cfg.ipc_base;
        self.check_cycle_cap();
        if let Some((s, id)) = &self.sync {
            s.publish(*id, self.cycles);
        }
    }

    fn stall_until(&mut self, available: u64) {
        let hidden = self.cycles + self.cfg.overlap_cycles;
        if available > hidden {
            // The residual latency is shared across ~mlp_width concurrent
            // independent misses the OoO engine keeps in flight.
            let stall = (available - hidden).div_ceil(self.cfg.mlp_width);
            self.cycles += stall;
            self.ctr.stall_cycles += stall;
            self.check_cycle_cap();
        }
    }

    fn handle_l1_eviction(&mut self, ev: Option<Evicted>) {
        if let Some(e) = ev {
            if e.unused_prefetch {
                self.ctr.pf_unused_evictions += 1;
            }
            if e.dirty {
                // Write back into L2 (or memory if absent).
                if self.l2.peek(e.line_addr).is_some() {
                    self.l2.mark_dirty(e.line_addr);
                } else {
                    let now = self.cycles;
                    self.uncore.lock().expect("uncore lock").writeback_from_l2(
                        e.line_addr,
                        now,
                        &mut self.ctr,
                    );
                }
            }
        }
    }

    fn handle_l2_eviction(&mut self, ev: Option<Evicted>) {
        if let Some(e) = ev {
            if e.unused_prefetch {
                self.ctr.pf_unused_evictions += 1;
            }
            if e.dirty {
                let now = self.cycles;
                self.uncore.lock().expect("uncore lock").writeback_from_l2(
                    e.line_addr,
                    now,
                    &mut self.ctr,
                );
            }
        }
    }

    /// Fetch a line to L2 (probing L2 first). Returns the cycle the data
    /// is available to the core, or `None` when a non-demand request was
    /// dropped for lack of an L2 MSHR. Demand requests stall on a full
    /// MSHR file instead of dropping.
    ///
    /// `from_l1` marks requests arriving from the L1 side (demand misses
    /// and L1 prefetcher fills): these train the MLC streamer, exactly as
    /// the hardware streamer trains on all L1D requests — otherwise an
    /// enabled L1 NLP would hide the stream from the streamer entirely.
    /// L2-level prefetch fills do not train it (no self-feedback).
    fn fetch_to_l2(&mut self, line: u64, demand: bool, from_l1: bool) -> Option<u64> {
        match self.l2.probe(line, demand) {
            Probe::Hit { ready } => {
                if demand {
                    self.ctr.l2_hits += 1;
                }
                if from_l1 && self.pf.mlc_streamer {
                    self.mlc.on_access(line, &mut self.hw_queue);
                }
                Some(ready.max(self.cycles) + self.cfg.l2.latency)
            }
            Probe::Miss => {
                if demand {
                    self.ctr.l2_misses += 1;
                }
                if from_l1 && self.pf.mlc_streamer {
                    self.mlc.on_access(line, &mut self.hw_queue);
                }
                if demand {
                    if self.pf.l2_nlp {
                        self.l2_nlp.on_miss(line, &mut self.hw_queue);
                    }
                    if self.pf.l2_amp {
                        self.amp.on_l2_miss(line, &mut self.hw_queue);
                    }
                }
                loop {
                    match self.l2_mshr.check(line, self.cycles) {
                        Alloc::Merged { ready } => {
                            return Some(ready.max(self.cycles));
                        }
                        Alloc::Full { free_at } => {
                            if demand {
                                // The core waits for an MSHR slot.
                                let stall = free_at.saturating_sub(self.cycles);
                                self.cycles += stall;
                                self.ctr.stall_cycles += stall;
                            } else {
                                return None;
                            }
                        }
                        Alloc::Ok => break,
                    }
                }
                self.sync_uncore();
                let now = self.cycles;
                let avail = self.uncore.lock().expect("uncore lock").access(
                    line,
                    now,
                    demand,
                    from_l1,
                    &mut self.ctr,
                );
                self.l2_mshr.insert(line, avail);
                let ev = self.l2.install(line, avail, !demand);
                self.handle_l2_eviction(ev);
                Some(avail)
            }
        }
    }

    /// The demand-access path (loads and stores).
    fn demand(&mut self, pc: OpId, addr: u64, is_store: bool) {
        self.bump_instr(1);
        // Address translation: a page walk stalls the access up front.
        let walk = self.tlb.access(addr);
        if walk > 0 {
            self.ctr.tlb_misses += 1;
            self.cycles += walk;
            self.ctr.stall_cycles += walk;
        }
        let line = line_of(addr);
        if is_store {
            self.ctr.stores += 1;
        } else {
            self.ctr.loads += 1;
            if self.pf.l1_ipp {
                self.ipp.on_load(pc, addr, &mut self.hw_queue);
            }
        }
        match self.l1.probe(line, true) {
            Probe::Hit { ready } => {
                self.ctr.l1_hits += 1;
                if is_store {
                    self.l1.mark_dirty(line);
                } else {
                    self.stall_until(ready);
                }
            }
            Probe::Miss => {
                self.ctr.l1_misses += 1;
                if self.pf.l1_nlp {
                    self.l1_nlp.on_miss(line, &mut self.hw_queue);
                }
                // L1 fill buffer: demand misses wait for a slot.
                while let Alloc::Full { free_at } = self.l1_mshr.check(line, self.cycles) {
                    let stall = free_at.saturating_sub(self.cycles);
                    self.cycles += stall;
                    self.ctr.stall_cycles += stall;
                }
                let avail = self
                    .fetch_to_l2(line, true, true)
                    .expect("demand fetch is never dropped");
                self.l1_mshr.insert(line, avail);
                let ev = self.l1.install(line, avail, false);
                self.handle_l1_eviction(ev);
                if is_store {
                    self.l1.mark_dirty(line);
                } else {
                    self.stall_until(avail);
                }
            }
        }
        self.drain_hw_queue();
    }

    /// Software prefetch: never stalls; fills L2 (locality ≤ 2) or L1
    /// (locality 3); dropped when no MSHR is free. Prefetch instructions
    /// retire without consuming pipeline slots (they issue to a load port
    /// and complete asynchronously).
    fn sw_prefetch(&mut self, addr: u64, locality: u8) {
        self.ctr.instructions += 1;
        self.ctr.sw_pf_issued += 1;
        let line = line_of(addr);
        if self.l1.peek(line).is_some() {
            self.ctr.sw_pf_redundant += 1;
            return;
        }
        let to_l1 = locality >= 3;
        if let Probe::Hit { .. } = self.l2.probe(line, false) {
            self.ctr.sw_pf_redundant += 1;
            return;
        }
        match self.l2_mshr.check(line, self.cycles) {
            Alloc::Merged { .. } => {
                self.ctr.sw_pf_redundant += 1;
            }
            Alloc::Full { .. } => {
                self.ctr.sw_pf_dropped += 1;
            }
            Alloc::Ok => {
                self.sync_uncore();
                let now = self.cycles;
                let avail = self.uncore.lock().expect("uncore lock").access(
                    line,
                    now,
                    false,
                    false,
                    &mut self.ctr,
                );
                self.l2_mshr.insert(line, avail);
                let ev = self.l2.install(line, avail, true);
                self.handle_l2_eviction(ev);
                if to_l1 {
                    let ev = self.l1.install(line, avail, true);
                    self.handle_l1_eviction(ev);
                }
            }
        }
    }

    /// Drain hardware-prefetcher requests generated by the last access.
    fn drain_hw_queue(&mut self) {
        if self.hw_queue.is_empty() {
            return;
        }
        let reqs = std::mem::take(&mut self.hw_queue);
        for r in reqs {
            self.ctr.hw_pf_issued += 1;
            match r.fill {
                FillLevel::L1 => {
                    if self.l1.peek(r.line).is_some() {
                        self.ctr.hw_pf_redundant += 1;
                        continue;
                    }
                    if !matches!(self.l1_mshr.check(r.line, self.cycles), Alloc::Ok) {
                        self.ctr.hw_pf_dropped += 1;
                        continue;
                    }
                    match self.fetch_to_l2(r.line, false, true) {
                        Some(avail) => {
                            self.l1_mshr.insert(r.line, avail);
                            let ev = self.l1.install(r.line, avail, true);
                            self.handle_l1_eviction(ev);
                        }
                        None => self.ctr.hw_pf_dropped += 1,
                    }
                }
                FillLevel::L2 => {
                    if self.l2.peek(r.line).is_some() {
                        self.ctr.hw_pf_redundant += 1;
                        continue;
                    }
                    if self.fetch_to_l2(r.line, false, false).is_none() {
                        self.ctr.hw_pf_dropped += 1;
                    }
                }
                FillLevel::L3 => unreachable!("L3 prefetches are handled in the uncore"),
            }
        }
    }
}

impl MemoryModel for Machine {
    fn load(&mut self, pc: OpId, addr: u64, _bytes: u8) {
        self.demand(pc, addr, false);
    }

    fn store(&mut self, pc: OpId, addr: u64, _bytes: u8) {
        self.demand(pc, addr, true);
    }

    fn prefetch(&mut self, _pc: OpId, addr: u64, locality: u8, _write: bool) {
        self.sw_prefetch(addr, locality);
    }

    fn retire(&mut self, n: u64) {
        self.bump_instr(n);
    }

    fn retire_fp(&mut self, n: u64) {
        self.ctr.instructions += n;
        self.cycles += n * self.cfg.fp_op_cycles;
        self.check_cycle_cap();
        if let Some((s, id)) = &self.sync {
            s.publish(*id, self.cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> GracemontConfig {
        GracemontConfig {
            l1: crate::config::CacheParams {
                size_bytes: 1024,
                assoc: 2,
                latency: 3,
            },
            l2: crate::config::CacheParams {
                size_bytes: 8 * 1024,
                assoc: 4,
                latency: 16,
            },
            l3: crate::config::CacheParams {
                size_bytes: 64 * 1024,
                assoc: 8,
                latency: 55,
            },
            tlb: crate::tlb::TlbConfig::disabled(),
            ..GracemontConfig::scaled()
        }
    }

    fn machine() -> Machine {
        Machine::new(small_cfg(), PrefetcherConfig::all_off())
    }

    #[test]
    fn first_access_misses_everywhere_then_hits() {
        let mut m = machine();
        m.load(OpId(1), 0x10000, 8);
        let c1 = m.counters();
        assert_eq!(c1.l1_misses, 1);
        assert_eq!(c1.dram_hits, 1);
        // Residual DRAM latency is divided across the MLP width.
        let expect =
            (small_cfg().dram_latency - small_cfg().overlap_cycles) / small_cfg().mlp_width;
        assert!(c1.stall_cycles >= expect, "DRAM stall expected: {c1:?}");

        m.load(OpId(1), 0x10000, 8);
        let c2 = m.counters();
        assert_eq!(c2.l1_hits, 1);
        assert_eq!(c2.dram_hits, 1, "second access is an L1 hit");
    }

    #[test]
    fn timely_prefetch_hides_dram_latency() {
        // Prefetch, burn enough instructions for the fill to land, then
        // demand-load: stall must be (near) zero.
        let mut m = machine();
        m.prefetch(OpId(9), 0x40000, 2, false);
        m.retire(3000);
        let stalls_before = m.counters().stall_cycles;
        m.load(OpId(1), 0x40000, 8);
        let c = m.counters();
        assert_eq!(c.sw_pf_issued, 1);
        assert_eq!(c.l2_hits, 1, "demand finds the line in L2");
        // Stall limited to L2 latency minus overlap (possibly 0).
        assert!(
            c.stall_cycles - stalls_before <= 16,
            "prefetch should hide DRAM: {c:?}"
        );
    }

    #[test]
    fn late_prefetch_hides_partial_latency() {
        let mut m = machine();
        // No gap between prefetch and demand: partial benefit only.
        m.prefetch(OpId(9), 0x40000, 2, false);
        m.load(OpId(1), 0x40000, 8);
        let late = m.counters().stall_cycles;

        let mut m2 = machine();
        m2.load(OpId(1), 0x40000, 8);
        let none = m2.counters().stall_cycles;
        // A just-in-time prefetch can cost up to one extra L2 transfer
        // (the demand now hits an in-flight L2 line) but no more.
        assert!(
            late <= none + small_cfg().l2.latency,
            "late {late} vs none {none}"
        );
    }

    #[test]
    fn prefetch_never_stalls_and_never_faults() {
        let mut m = machine();
        let before = m.cycles();
        for i in 0..10 {
            m.prefetch(OpId(5), 0xdead_0000 + i * 64, 2, false);
        }
        // Only instruction-retire time advances (10 instrs / ipc 3).
        assert!(m.cycles() - before <= 4);
        assert_eq!(m.counters().stall_cycles, 0);
    }

    #[test]
    fn prefetches_drop_when_mshrs_full() {
        let mut cfg = small_cfg();
        cfg.l2_mshrs = 2;
        let mut m = Machine::new(cfg, PrefetcherConfig::all_off());
        // Issue many prefetches back-to-back: only 2 MSHRs available.
        for i in 0..8 {
            m.prefetch(OpId(5), 0x100000 + i * 64, 2, false);
        }
        let c = m.counters();
        assert_eq!(c.sw_pf_issued, 8);
        assert!(c.sw_pf_dropped >= 5, "most must drop: {c:?}");
    }

    #[test]
    fn demand_waits_rather_than_drops_on_full_mshrs() {
        let mut cfg = small_cfg();
        cfg.l2_mshrs = 1;
        let mut m = Machine::new(cfg, PrefetcherConfig::all_off());
        m.prefetch(OpId(5), 0x100000, 2, false); // occupies the only MSHR
        m.load(OpId(1), 0x200000, 8); // must wait, then fetch
        let c = m.counters();
        assert_eq!(c.dram_hits, 1);
        assert_eq!(c.sw_pf_dropped, 0);
    }

    #[test]
    fn redundant_prefetch_is_counted_not_refetched() {
        let mut m = machine();
        m.load(OpId(1), 0x30000, 8);
        m.retire(3000);
        let lines_before = m.dram_bytes_total();
        m.prefetch(OpId(9), 0x30000, 2, false);
        assert_eq!(m.counters().sw_pf_redundant, 1);
        assert_eq!(m.dram_bytes_total(), lines_before);
    }

    #[test]
    fn l1_nlp_fetches_next_line() {
        let mut m = Machine::new(
            small_cfg(),
            PrefetcherConfig {
                l1_nlp: true,
                ..PrefetcherConfig::all_off()
            },
        );
        m.load(OpId(1), 0x50000, 8);
        let c = m.counters();
        assert_eq!(c.hw_pf_issued, 1);
        // Next line was brought in: a demand touch is an L1 hit (possibly
        // in-flight).
        m.retire(3000);
        m.load(OpId(1), 0x50040, 8);
        assert_eq!(m.counters().l1_hits, 1);
    }

    #[test]
    fn streaming_load_pattern_trains_ipp() {
        let mut m = Machine::new(
            small_cfg(),
            PrefetcherConfig {
                l1_ipp: true,
                ..PrefetcherConfig::all_off()
            },
        );
        for i in 0..64u64 {
            m.load(OpId(7), 0x80000 + i * 8, 8);
            m.retire(16);
        }
        let c = m.counters();
        assert!(c.hw_pf_issued > 10, "IPP must engage on a stride: {c:?}");
    }

    #[test]
    fn instructions_advance_cycles_at_ipc() {
        let mut m = machine();
        m.retire(300);
        assert_eq!(m.cycles(), 100);
        assert_eq!(m.counters().instructions, 300);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut m = machine();
        // L1: 1 KB / 64 B / 2-way = 8 sets. Fill one set with stores and
        // overflow it; evicted dirty lines eventually reach DRAM writeback
        // via L2 when also evicted there. Simplest check: store then evict
        // from both levels by touching many conflicting lines.
        let set_stride = 8 * 64; // lines mapping to the same L1 set
        for i in 0..200u64 {
            m.store(OpId(2), 0x100000 + i * set_stride, 8);
        }
        let c = m.counters();
        assert!(c.stores == 200);
        assert!(
            c.dram_lines_written > 0,
            "dirty evictions must write back: {c:?}"
        );
    }

    #[test]
    fn huge_pages_beat_base_pages_on_wide_gathers() {
        // A gather over many 4K pages thrashes the TLB; 2MB pages absorb
        // it (the paper's Section 4.4 methodology point).
        let run = |tlb: crate::tlb::TlbConfig| {
            let cfg = GracemontConfig { tlb, ..small_cfg() };
            let mut m = Machine::new(cfg, PrefetcherConfig::all_off());
            // 256 pages, strided so every access touches a new page.
            for round in 0..4u64 {
                for p in 0..256u64 {
                    m.load(OpId(1), 0x1000_0000 + p * 4096 + round * 64, 8);
                    m.retire(4);
                }
            }
            m.counters()
        };
        let huge = run(crate::tlb::TlbConfig::huge_pages());
        let base = run(crate::tlb::TlbConfig::base_pages());
        assert!(base.tlb_misses > 100 * huge.tlb_misses.max(1));
        assert!(base.cycles > huge.cycles, "walks must cost time");
    }

    #[test]
    fn cycle_cap_raises_the_cancel_token() {
        let mut m = machine();
        let tok = Arc::new(AtomicBool::new(false));
        m.set_cycle_cap(1_000, tok.clone());
        // Cheap work stays under the cap.
        m.retire(300);
        assert!(!tok.load(Ordering::Relaxed));
        // DRAM misses blow past it.
        for i in 0..64u64 {
            m.load(OpId(1), 0x700000 + i * 4096, 8);
        }
        assert!(m.cycles() > 1_000);
        assert!(tok.load(Ordering::Relaxed), "cap crossing must cancel");
    }

    #[test]
    fn uncapped_machine_never_touches_the_token() {
        let mut m = machine();
        for i in 0..64u64 {
            m.load(OpId(1), 0x700000 + i * 4096, 8);
        }
        // No cap configured: nothing to observe, nothing raised.
        assert!(m.counters().cycles > 0);
    }

    #[test]
    fn counters_report_l2_miss_events() {
        let mut m = machine();
        m.load(OpId(1), 0x90000, 8);
        m.load(OpId(1), 0xa0000, 8);
        let c = m.counters();
        assert_eq!(c.l2_miss_events(), 2);
        assert!(c.l2_mpki() > 0.0);
    }
}
