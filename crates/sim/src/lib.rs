//! # asap-sim — an execution-driven Gracemont-like memory-hierarchy
//! simulator
//!
//! Stands in for the paper's Intel Alder Lake E-core testbed (Table 1)
//! and its MSR-controlled hardware prefetchers (Table 2). A [`Machine`]
//! implements [`asap_ir::MemoryModel`], so sparsified kernels run on it
//! directly through the IR interpreter, producing PMU-style [`Counters`]
//! (instructions, cycles, the paper's L2-miss approximation
//! `L3_HIT + DRAM_HIT`, prefetch outcomes, DRAM traffic).
//!
//! Modeled first-order effects (see DESIGN.md for the approximations):
//! finite MSHRs shared by demand misses and both kinds of prefetch,
//! DRAM bandwidth queueing, per-line fill timestamps (timeliness),
//! LRU pollution, and the six Table-2 hardware prefetchers, each
//! individually toggleable.

pub mod cache;
pub mod config;
pub mod counters;
pub mod dram;
pub mod hwpf;
pub mod machine;
pub mod mshr;
pub mod multicore;
pub mod report;
pub mod tlb;

pub use cache::{line_of, Cache, Evicted, Probe};
pub use config::{table2, CacheParams, GracemontConfig, PrefetcherConfig, LINE_BYTES};
pub use counters::Counters;
pub use dram::Dram;
pub use hwpf::{Amp, FillLevel, Ipp, NextLine, PfRequest, Streamer};
pub use machine::{Machine, Uncore};
pub use mshr::{Alloc, Mshr};
pub use multicore::{run_parallel, ClockSync, MulticoreResult};
pub use report::{summarize, Rates};
pub use tlb::{Tlb, TlbConfig};
