//! Machine configuration (paper Table 1) and hardware-prefetcher
//! configuration (paper Table 2).

/// Cache line size in bytes (fixed across the hierarchy).
pub const LINE_BYTES: u64 = 64;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    pub size_bytes: usize,
    pub assoc: usize,
    /// Load-to-use latency in core cycles when hitting this level.
    pub latency: u64,
}

impl CacheParams {
    pub fn sets(&self) -> usize {
        self.size_bytes / (LINE_BYTES as usize * self.assoc)
    }
}

/// The machine model approximating an Alder Lake E-core (Gracemont) and
/// its uncore, per Table 1 of the paper.
///
/// Two presets exist: [`GracemontConfig::paper`] with the real cache
/// sizes, and [`GracemontConfig::scaled`] with L2/L3 shrunk ~16× so that
/// generator-sized matrices (10⁵–10⁶ rows) stress the hierarchy the way
/// the paper's top-5% SuiteSparse matrices stress 30 MB of L3, while
/// keeping simulation time tractable (see DESIGN.md, substitutions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GracemontConfig {
    /// Core frequency in Hz (2.4 GHz, pinned via the pstate driver).
    pub freq_hz: u64,
    /// Peak retire rate for non-memory instructions (instructions/cycle).
    pub ipc_base: u64,
    /// Out-of-order overlap window: cycles of a demand-miss stall that the
    /// core's small OoO engine can hide.
    pub overlap_cycles: u64,
    /// Memory-level parallelism of demand misses: the OoO engine keeps
    /// several independent misses in flight, so the average exposed stall
    /// per miss is the residual latency divided by this width.
    pub mlp_width: u64,
    /// Cycles charged per floating-point arithmetic op, modeling the FP
    /// latency that binds scalarized reduction chains (integer ops retire
    /// at `ipc_base` alongside).
    pub fp_op_cycles: u64,
    pub l1: CacheParams,
    pub l2: CacheParams,
    pub l3: CacheParams,
    /// L1 fill-buffer (MSHR) entries.
    pub l1_mshrs: usize,
    /// L2 MSHR entries — the resource software and hardware prefetches
    /// contend for (paper Section 4.1).
    pub l2_mshrs: usize,
    /// DRAM access latency (row access + controller) in core cycles.
    pub dram_latency: u64,
    /// Minimum core cycles between consecutive DRAM line transfers
    /// (inverse bandwidth: DDR5-4800 dual channel ≈ 76.8 GB/s ≈ one 64 B
    /// line every 2 cycles at 2.4 GHz).
    pub dram_line_interval: u64,
    /// Data-TLB model; defaults to the paper's huge-page setup.
    pub tlb: crate::tlb::TlbConfig,
}

impl GracemontConfig {
    /// Table-1 sizes: 32 KB L1D, 2 MB L2 (cluster), 30 MB L3.
    pub fn paper() -> GracemontConfig {
        GracemontConfig {
            freq_hz: 2_400_000_000,
            ipc_base: 3,
            overlap_cycles: 24,
            mlp_width: 4,
            fp_op_cycles: 2,
            l1: CacheParams {
                size_bytes: 32 * 1024,
                assoc: 8,
                latency: 3,
            },
            l2: CacheParams {
                size_bytes: 2 * 1024 * 1024,
                assoc: 16,
                latency: 16,
            },
            l3: CacheParams {
                size_bytes: 30 * 1024 * 1024,
                assoc: 15,
                latency: 55,
            },
            l1_mshrs: 12,
            l2_mshrs: 32,
            dram_latency: 220,
            dram_line_interval: 2,
            tlb: crate::tlb::TlbConfig::huge_pages(),
        }
    }

    /// The default evaluation preset: same ratios, L2/L3 shrunk so the
    /// synthetic collection is memory-bound at tractable sizes.
    pub fn scaled() -> GracemontConfig {
        GracemontConfig {
            l2: CacheParams {
                size_bytes: 128 * 1024,
                assoc: 16,
                latency: 16,
            },
            l3: CacheParams {
                size_bytes: 2 * 1024 * 1024,
                assoc: 16,
                latency: 55,
            },
            ..GracemontConfig::paper()
        }
    }

    /// Wall-clock seconds for a cycle count at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }
}

impl Default for GracemontConfig {
    fn default() -> Self {
        GracemontConfig::scaled()
    }
}

/// Which hardware prefetchers are enabled — the MSR toggles of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetcherConfig {
    /// L1 next-line prefetcher.
    pub l1_nlp: bool,
    /// L1 instruction-pointer (stride) prefetcher.
    pub l1_ipp: bool,
    /// L2 next-line prefetcher.
    pub l2_nlp: bool,
    /// Mid-level-cache streamer.
    pub mlc_streamer: bool,
    /// L2 adaptive multipath prefetcher.
    pub l2_amp: bool,
    /// Last-level-cache streamer.
    pub llc_streamer: bool,
}

impl PrefetcherConfig {
    /// Out-of-box processor state ("Default On/Off" column of Table 2).
    pub fn hw_default() -> PrefetcherConfig {
        PrefetcherConfig {
            l1_nlp: true,
            l1_ipp: true,
            l2_nlp: false,
            mlc_streamer: true,
            l2_amp: true,
            llc_streamer: true,
        }
    }

    /// The paper's optimized setting for SpMV: L1 NLP and L2 AMP disabled
    /// ("Setting" column of Table 2 with AMP's selective choice = off).
    pub fn optimized_spmv() -> PrefetcherConfig {
        PrefetcherConfig {
            l1_nlp: false,
            l2_amp: false,
            ..PrefetcherConfig::hw_default()
        }
    }

    /// The paper's optimized setting for SpMM: L1 NLP disabled, L2 AMP
    /// kept (it exploits SpMM's 2D pattern).
    pub fn optimized_spmm() -> PrefetcherConfig {
        PrefetcherConfig {
            l1_nlp: false,
            ..PrefetcherConfig::hw_default()
        }
    }

    /// Every hardware prefetcher off (for isolation experiments).
    pub fn all_off() -> PrefetcherConfig {
        PrefetcherConfig {
            l1_nlp: false,
            l1_ipp: false,
            l2_nlp: false,
            mlc_streamer: false,
            l2_amp: false,
            llc_streamer: false,
        }
    }
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig::hw_default()
    }
}

/// Render Table 2 (prefetcher inventory with default and chosen state).
pub fn table2(chosen: &PrefetcherConfig) -> String {
    let rows = [
        ("L1 NLP", "L1 next-line prefetcher", true, chosen.l1_nlp),
        (
            "L1 IPP",
            "L1 instruction-pointer stride prefetcher (2 streams)",
            true,
            chosen.l1_ipp,
        ),
        ("L2 NLP", "L2 next-line prefetcher", false, chosen.l2_nlp),
        (
            "MLC Streamer",
            "L2 stream prefetcher",
            true,
            chosen.mlc_streamer,
        ),
        (
            "L2 AMP",
            "L2 adaptive multipath prefetcher",
            true,
            chosen.l2_amp,
        ),
        (
            "LLC Streamer",
            "L3 stream prefetcher",
            true,
            chosen.llc_streamer,
        ),
    ];
    let mut s = String::from("Prefetcher    | Default | Setting | Description\n");
    for (name, desc, dflt, on) in rows {
        s.push_str(&format!(
            "{name:<13} | {:<7} | {:<7} | {desc}\n",
            if dflt { "On" } else { "Off" },
            if on { "On" } else { "Off" },
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_1() {
        let c = GracemontConfig::paper();
        assert_eq!(c.freq_hz, 2_400_000_000);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l3.size_bytes, 30 * 1024 * 1024);
    }

    #[test]
    fn scaled_keeps_l1_and_ratios() {
        let c = GracemontConfig::scaled();
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert!(c.l2.size_bytes < GracemontConfig::paper().l2.size_bytes);
        assert!(c.l3.size_bytes > c.l2.size_bytes);
    }

    #[test]
    fn sets_are_powers_of_two_for_presets() {
        for c in [GracemontConfig::paper(), GracemontConfig::scaled()] {
            for p in [c.l1, c.l2] {
                let sets = p.sets();
                assert!(sets.is_power_of_two(), "{sets} sets");
            }
        }
    }

    #[test]
    fn default_prefetchers_match_table_2() {
        let p = PrefetcherConfig::hw_default();
        assert!(p.l1_nlp && p.l1_ipp && p.mlc_streamer && p.l2_amp && p.llc_streamer);
        assert!(!p.l2_nlp);
    }

    #[test]
    fn optimized_spmv_disables_nlp_and_amp() {
        let p = PrefetcherConfig::optimized_spmv();
        assert!(!p.l1_nlp && !p.l2_amp);
        assert!(p.l1_ipp && p.mlc_streamer && p.llc_streamer);
    }

    #[test]
    fn optimized_spmm_keeps_amp() {
        let p = PrefetcherConfig::optimized_spmm();
        assert!(!p.l1_nlp && p.l2_amp);
    }

    #[test]
    fn table2_renders_all_rows() {
        let t = table2(&PrefetcherConfig::optimized_spmv());
        for name in [
            "L1 NLP",
            "L1 IPP",
            "L2 NLP",
            "MLC Streamer",
            "L2 AMP",
            "LLC Streamer",
        ] {
            assert!(t.contains(name));
        }
    }

    #[test]
    fn cycles_to_seconds() {
        let c = GracemontConfig::paper();
        assert!((c.cycles_to_seconds(2_400_000_000) - 1.0).abs() < 1e-12);
    }
}
