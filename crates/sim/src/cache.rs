//! A set-associative, write-back, write-allocate cache with LRU
//! replacement and per-line fill timestamps.
//!
//! Lines carry a `ready_cycle` so a hit on an in-flight line (filled by an
//! earlier prefetch or miss that has not completed yet) stalls only for
//! the *remaining* latency — the mechanism by which a timely prefetch
//! hides memory latency and a late one hides part of it.

use crate::config::{CacheParams, LINE_BYTES};

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present; data usable at `ready` (may be in the future if the
    /// fill is still in flight).
    Hit {
        ready: u64,
    },
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Cycle at which the fill completes.
    ready: u64,
    /// Installed by a prefetch (SW or HW) and not yet demanded.
    prefetched: bool,
    /// LRU stamp.
    lru: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    ready: 0,
    prefetched: false,
    lru: 0,
};

/// Information about an evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    pub line_addr: u64,
    pub dirty: bool,
    /// The line was prefetched but never demand-referenced — a useless
    /// prefetch (pollution).
    pub unused_prefetch: bool,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    lines: Vec<Line>,
    stamp: u64,
}

impl Cache {
    pub fn new(params: CacheParams) -> Cache {
        let sets = params.sets();
        assert!(sets > 0, "cache must have at least one set");
        Cache {
            sets,
            assoc: params.assoc,
            lines: vec![INVALID; sets * params.assoc],
            stamp: 0,
        }
    }

    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = (line_addr as usize) % self.sets;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Probe for a line. On a hit the LRU stamp is refreshed and, when
    /// `demand` is set, the prefetched mark is cleared (the prefetch paid
    /// off).
    pub fn probe(&mut self, line_addr: u64, demand: bool) -> Probe {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line_addr);
        for l in &mut self.lines[range] {
            if l.valid && l.tag == line_addr {
                l.lru = stamp;
                if demand {
                    l.prefetched = false;
                }
                return Probe::Hit { ready: l.ready };
            }
        }
        Probe::Miss
    }

    /// Probe without touching replacement state (for inspection/tests).
    pub fn peek(&self, line_addr: u64) -> Option<u64> {
        let range = self.set_range(line_addr);
        self.lines[range]
            .iter()
            .find(|l| l.valid && l.tag == line_addr)
            .map(|l| l.ready)
    }

    /// Install a line (filling the LRU way), returning the victim.
    pub fn install(&mut self, line_addr: u64, ready: u64, prefetched: bool) -> Option<Evicted> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line_addr);
        let set = &mut self.lines[range];
        // Already present (e.g. race between prefetch and demand): just
        // refresh.
        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == line_addr) {
            l.ready = l.ready.min(ready);
            l.lru = stamp;
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("assoc >= 1");
        let evicted = if victim.valid {
            Some(Evicted {
                line_addr: victim.tag,
                dirty: victim.dirty,
                unused_prefetch: victim.prefetched,
            })
        } else {
            None
        };
        *victim = Line {
            tag: line_addr,
            valid: true,
            dirty: false,
            ready,
            prefetched,
            lru: stamp,
        };
        evicted
    }

    /// Mark a line dirty (store hit / write-allocate fill).
    pub fn mark_dirty(&mut self, line_addr: u64) {
        let range = self.set_range(line_addr);
        if let Some(l) = self.lines[range]
            .iter_mut()
            .find(|l| l.valid && l.tag == line_addr)
        {
            l.dirty = true;
        }
    }

    /// Number of valid lines (for occupancy checks in tests).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    pub fn capacity_lines(&self) -> usize {
        self.lines.len()
    }
}

/// The line address of a byte address.
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways of 64B lines = 256 B.
        Cache::new(CacheParams {
            size_bytes: 256,
            assoc: 2,
            latency: 1,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut c = tiny();
        assert_eq!(c.probe(10, true), Probe::Miss);
        c.install(10, 5, false);
        assert_eq!(c.probe(10, true), Probe::Hit { ready: 5 });
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line addrs, 2 sets).
        c.install(0, 0, false);
        c.install(2, 0, false);
        c.probe(0, true); // refresh 0 -> 2 is LRU
        let ev = c.install(4, 0, false).expect("one way evicted");
        assert_eq!(ev.line_addr, 2);
        assert!(matches!(c.probe(0, true), Probe::Hit { .. }));
        assert_eq!(c.probe(2, true), Probe::Miss);
    }

    #[test]
    fn eviction_reports_unused_prefetch() {
        let mut c = tiny();
        c.install(0, 0, true); // prefetched, never referenced
        c.install(2, 0, false);
        let ev = c.install(4, 0, false).unwrap();
        assert!(ev.unused_prefetch);
        assert_eq!(ev.line_addr, 0);
    }

    #[test]
    fn demand_hit_clears_prefetch_mark() {
        let mut c = tiny();
        c.install(0, 0, true);
        c.probe(0, true); // demand reference
        c.install(2, 0, false);
        let ev = c.install(4, 0, false).unwrap();
        assert!(!ev.unused_prefetch);
    }

    #[test]
    fn dirty_travels_with_eviction() {
        let mut c = tiny();
        c.install(0, 0, false);
        c.mark_dirty(0);
        c.install(2, 0, false);
        let ev = c.install(4, 0, false).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn reinstall_keeps_earliest_ready() {
        let mut c = tiny();
        c.install(0, 100, true);
        assert!(c.install(0, 50, false).is_none());
        assert_eq!(c.peek(0), Some(50));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.install(0, 0, false);
        c.install(1, 0, false); // odd -> set 1
        c.install(2, 0, false);
        c.install(3, 0, false);
        assert_eq!(c.valid_lines(), 4);
    }

    #[test]
    fn line_of_addr() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
    }
}
