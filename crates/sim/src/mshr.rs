//! Miss Status Holding Registers: the finite pool of outstanding-miss
//! slots that demand misses, software prefetches and hardware prefetches
//! all compete for — the contention mechanism behind the paper's insight
//! that disabling inaccurate hardware prefetchers "frees critical
//! resources" (Sections 1 and 4.1).

/// A fixed-capacity MSHR file. Entries are (line, completion cycle).
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    entries: Vec<(u64, u64)>,
}

/// Result of trying to allocate an MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alloc {
    /// Slot granted.
    Ok,
    /// The line already has an outstanding miss completing at `ready`
    /// (secondary miss — merged, no new slot).
    Merged { ready: u64 },
    /// All slots busy; the earliest frees at `free_at`.
    Full { free_at: u64 },
}

impl Mshr {
    pub fn new(capacity: usize) -> Mshr {
        assert!(capacity > 0);
        Mshr {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Drop entries whose fills have completed by `now`.
    fn expire(&mut self, now: u64) {
        self.entries.retain(|&(_, ready)| ready > now);
    }

    /// Check whether a slot could be granted for `line` at `now`, without
    /// reserving it (the completion time is only known after the fetch is
    /// priced; call [`Mshr::insert`] then).
    pub fn check(&mut self, line: u64, now: u64) -> Alloc {
        self.expire(now);
        if let Some(&(_, r)) = self.entries.iter().find(|&&(l, _)| l == line) {
            return Alloc::Merged { ready: r };
        }
        if self.entries.len() >= self.capacity {
            let free_at = self
                .entries
                .iter()
                .map(|&(_, r)| r)
                .min()
                .expect("full implies non-empty");
            return Alloc::Full { free_at };
        }
        Alloc::Ok
    }

    /// Reserve a slot after a successful [`Mshr::check`].
    pub fn insert(&mut self, line: u64, ready: u64) {
        debug_assert!(self.entries.len() < self.capacity, "insert without check");
        self.entries.push((line, ready));
    }

    /// Try to allocate a slot for `line`, completing at `ready`.
    pub fn alloc(&mut self, line: u64, now: u64, ready: u64) -> Alloc {
        match self.check(line, now) {
            Alloc::Ok => {
                self.insert(line, ready);
                Alloc::Ok
            }
            other => other,
        }
    }

    /// Outstanding entries at `now`.
    pub fn in_flight(&mut self, now: u64) -> usize {
        self.expire(now);
        self.entries.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_until_full() {
        let mut m = Mshr::new(2);
        assert_eq!(m.alloc(1, 0, 100), Alloc::Ok);
        assert_eq!(m.alloc(2, 0, 150), Alloc::Ok);
        assert_eq!(m.alloc(3, 0, 200), Alloc::Full { free_at: 100 });
    }

    #[test]
    fn merges_same_line() {
        let mut m = Mshr::new(2);
        m.alloc(7, 0, 90);
        assert_eq!(m.alloc(7, 10, 200), Alloc::Merged { ready: 90 });
        assert_eq!(m.in_flight(10), 1);
    }

    #[test]
    fn frees_after_completion() {
        let mut m = Mshr::new(1);
        m.alloc(1, 0, 100);
        assert!(matches!(m.alloc(2, 50, 160), Alloc::Full { .. }));
        assert_eq!(m.alloc(2, 100, 300), Alloc::Ok);
        assert_eq!(m.in_flight(100), 1);
    }

    #[test]
    fn in_flight_expires_lazily() {
        let mut m = Mshr::new(4);
        m.alloc(1, 0, 10);
        m.alloc(2, 0, 20);
        assert_eq!(m.in_flight(5), 2);
        assert_eq!(m.in_flight(15), 1);
        assert_eq!(m.in_flight(25), 0);
    }
}
