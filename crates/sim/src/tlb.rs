//! A data-TLB model.
//!
//! The paper's methodology (Section 4.4) backs sparse matrix storage with
//! 2 MB huge pages and dense operands with 1 GB pages "to reduce TLB
//! pressure from irregular accesses". This module lets the simulator
//! reproduce that effect: with 4 KiB pages a gather over a multi-megabyte
//! vector thrashes a realistic dTLB and pays a page walk on most
//! accesses; with 2 MB pages the working set fits in a few entries.

/// Configuration of the dTLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    pub enable: bool,
    /// Fully-associative entry count.
    pub entries: usize,
    /// Page size backing all buffers.
    pub page_bytes: u64,
    /// Page-walk penalty in cycles on a miss.
    pub walk_cycles: u64,
}

impl TlbConfig {
    /// The paper's tuned setup: 2 MB huge pages (dense operands use 1 GB
    /// pages on the real machine; at simulator scale 2 MB already removes
    /// all pressure, so one size suffices).
    pub fn huge_pages() -> TlbConfig {
        TlbConfig {
            enable: true,
            entries: 64,
            page_bytes: 2 * 1024 * 1024,
            walk_cycles: 80,
        }
    }

    /// Baseline 4 KiB pages (the ablation configuration).
    pub fn base_pages() -> TlbConfig {
        TlbConfig {
            page_bytes: 4096,
            ..TlbConfig::huge_pages()
        }
    }

    /// Translation disabled (zero-cost, for focused cache studies).
    pub fn disabled() -> TlbConfig {
        TlbConfig {
            enable: false,
            ..TlbConfig::huge_pages()
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::huge_pages()
    }
}

/// Fully-associative LRU TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<(u64, u64)>, // (page number, lru stamp)
    stamp: u64,
}

impl Tlb {
    pub fn new(cfg: TlbConfig) -> Tlb {
        Tlb {
            entries: Vec::with_capacity(cfg.entries),
            stamp: 0,
            cfg,
        }
    }

    /// Translate an access. Returns the walk penalty (0 on a hit or when
    /// disabled).
    pub fn access(&mut self, addr: u64) -> u64 {
        if !self.cfg.enable {
            return 0;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let page = addr / self.cfg.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = stamp;
            return 0;
        }
        if self.entries.len() >= self.cfg.entries {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("entries > 0");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, stamp));
        self.cfg.walk_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_walks_second_hits() {
        let mut t = Tlb::new(TlbConfig::huge_pages());
        assert_eq!(t.access(0x1000), 80);
        assert_eq!(t.access(0x1FF8), 0, "same 2MB page");
        assert_eq!(t.access(0x40_0000), 80, "next page walks");
    }

    #[test]
    fn disabled_tlb_is_free() {
        let mut t = Tlb::new(TlbConfig::disabled());
        for i in 0..1000u64 {
            assert_eq!(t.access(i * 0x100_0000), 0);
        }
    }

    #[test]
    fn small_pages_thrash_on_wide_gathers() {
        // 128 distinct 4K pages round-robin over a 64-entry TLB: every
        // access misses once the set exceeds capacity.
        let mut t = Tlb::new(TlbConfig::base_pages());
        let mut walks = 0;
        for round in 0..4 {
            for p in 0..128u64 {
                if t.access(p * 4096) > 0 {
                    walks += 1;
                }
            }
            if round == 0 {
                assert_eq!(walks, 128, "cold misses");
            }
        }
        assert_eq!(walks, 4 * 128, "LRU thrash: every access walks");
    }

    #[test]
    fn huge_pages_absorb_the_same_gather() {
        // The same footprint (128 * 4K = 512 KB) fits in one 2 MB page.
        let mut t = Tlb::new(TlbConfig::huge_pages());
        let mut walks = 0;
        for _ in 0..4 {
            for p in 0..128u64 {
                if t.access(p * 4096) > 0 {
                    walks += 1;
                }
            }
        }
        assert_eq!(walks, 1);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            ..TlbConfig::base_pages()
        });
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // refresh page 0
        t.access(8192); // page 2 evicts page 1
        assert_eq!(t.access(0), 0, "page 0 was kept");
        assert_eq!(t.access(4096), 80, "page 1 was evicted");
    }
}
