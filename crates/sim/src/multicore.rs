//! Multi-core simulation: N cores with private L1/L2 sharing one
//! [`Uncore`] (L3 + DRAM bandwidth), as in the paper's Figure 12 roofline
//! experiment.
//!
//! Cores run in OS threads, each with its own local clock; shared-resource
//! contention (DRAM slots, L3 content) is mediated through the uncore
//! mutex. Cross-core timestamps are therefore approximate for asymmetric
//! workloads but sound for the symmetric row-partitioned kernels the
//! experiment uses (see DESIGN.md).

use crate::config::{GracemontConfig, PrefetcherConfig};
use crate::counters::Counters;
use crate::machine::{Machine, Uncore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Conservative clock synchronization for multi-core runs.
///
/// Each core publishes its local simulated clock; before touching shared
/// state (the uncore) a core waits until it is no more than `quantum`
/// cycles ahead of the slowest active core. This bounds cross-core clock
/// skew so that shared-resource timestamps (DRAM slots, L3 fills) are
/// meaningful, without requiring lockstep execution.
///
/// An optional cancellation token (shared with the run's
/// [`asap_ir::Budget`]) keeps the wait loop from wedging: when a peer
/// core traps out of its run — budget exhaustion, interpreter fault —
/// it may never advance its clock again, and without the token every
/// other core would spin in [`wait_turn`](ClockSync::wait_turn)
/// forever.
#[derive(Debug)]
pub struct ClockSync {
    clocks: Vec<AtomicU64>,
    quantum: u64,
    cancel: Option<Arc<AtomicBool>>,
}

impl ClockSync {
    /// Default skew bound, in cycles. Kept below the DRAM burst window so
    /// residual skew cannot register as bandwidth backlog.
    pub const DEFAULT_QUANTUM: u64 = 256;

    pub fn new(n_cores: usize, quantum: u64) -> Arc<ClockSync> {
        ClockSync::with_cancel(n_cores, quantum, None)
    }

    /// A clock sync whose wait loop observes `cancel`: once the token is
    /// set, waiting cores stop gating on their peers and return.
    pub fn with_cancel(
        n_cores: usize,
        quantum: u64,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Arc<ClockSync> {
        Arc::new(ClockSync {
            clocks: (0..n_cores).map(|_| AtomicU64::new(0)).collect(),
            quantum,
            cancel,
        })
    }

    /// Whether the run has been cancelled (always false without a token).
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Publish core `id`'s current clock (cheap; called on retire).
    pub fn publish(&self, id: usize, now: u64) {
        self.clocks[id].store(now, Ordering::Relaxed);
    }

    /// Block (yielding) until core `id` at `now` is within the skew bound
    /// of the slowest active core, or the run is cancelled.
    pub fn wait_turn(&self, id: usize, now: u64) {
        self.publish(id, now);
        loop {
            let min_other = self
                .clocks
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != id)
                .map(|(_, c)| c.load(Ordering::Relaxed))
                .min()
                .unwrap_or(u64::MAX);
            if now <= min_other.saturating_add(self.quantum) {
                return;
            }
            // A trapped peer never advances its clock; the token is the
            // only exit from this loop in that case.
            if self.is_cancelled() {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Mark core `id` as finished: it no longer gates others.
    pub fn finish(&self, id: usize) {
        self.clocks[id].store(u64::MAX, Ordering::Relaxed);
    }
}

/// The outcome of a multi-core run.
#[derive(Debug, Clone)]
pub struct MulticoreResult {
    pub per_core: Vec<Counters>,
    /// Events summed, cycles = max over cores (wall clock).
    pub aggregate: Counters,
    /// Total DRAM traffic (all cores and prefetchers), bytes.
    pub dram_bytes: u64,
}

impl MulticoreResult {
    /// Wall-clock seconds of the parallel region.
    pub fn seconds(&self, cfg: &GracemontConfig) -> f64 {
        cfg.cycles_to_seconds(self.aggregate.cycles)
    }
}

/// Run `work(core_id, machine)` on `n_threads` cores sharing one uncore.
pub fn run_parallel<F>(
    cfg: GracemontConfig,
    pf: PrefetcherConfig,
    n_threads: usize,
    work: F,
) -> MulticoreResult
where
    F: Fn(usize, &mut Machine) + Sync,
{
    run_parallel_governed(cfg, pf, n_threads, None, work)
}

/// [`run_parallel`] with an optional cancellation token shared between
/// the clock sync and the caller's [`asap_ir::Budget`] clones. When one
/// core trips its budget (or an external deadline fires), the token
/// releases every peer's `wait_turn` spin so the run winds down instead
/// of deadlocking on the trapped core's frozen clock.
pub fn run_parallel_governed<F>(
    cfg: GracemontConfig,
    pf: PrefetcherConfig,
    n_threads: usize,
    cancel: Option<Arc<AtomicBool>>,
    work: F,
) -> MulticoreResult
where
    F: Fn(usize, &mut Machine) + Sync,
{
    assert!(n_threads >= 1);
    let uncore = Uncore::shared(&cfg, &pf);
    let sync = ClockSync::with_cancel(n_threads, ClockSync::DEFAULT_QUANTUM, cancel);
    let per_core: Vec<Counters> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n_threads);
        for tid in 0..n_threads {
            let uncore = uncore.clone();
            let sync = sync.clone();
            let work = &work;
            handles.push(s.spawn(move || {
                let mut m = Machine::with_uncore(cfg, pf, uncore);
                m.attach_clock_sync(sync.clone(), tid);
                work(tid, &mut m);
                sync.finish(tid);
                m.counters()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("core thread panicked"))
            .collect()
    });
    let mut aggregate = Counters::default();
    for c in &per_core {
        aggregate.merge_parallel(c);
    }
    let dram_bytes = uncore.lock().expect("uncore lock").dram.bytes_transferred();
    MulticoreResult {
        per_core,
        aggregate,
        dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_ir::{MemoryModel, OpId};

    fn cfg() -> GracemontConfig {
        GracemontConfig::scaled()
    }

    /// Each core streams over a disjoint 1 MiB region.
    fn stream_work(tid: usize, m: &mut Machine) {
        let base = 0x1000_0000u64 + tid as u64 * 0x40_0000;
        for i in 0..16_384u64 {
            m.load(OpId(1), base + i * 64, 8);
            m.retire(4);
        }
    }

    #[test]
    fn more_threads_do_more_total_work_in_similar_time() {
        let r1 = run_parallel(cfg(), PrefetcherConfig::all_off(), 1, stream_work);
        let r4 = run_parallel(cfg(), PrefetcherConfig::all_off(), 4, stream_work);
        assert_eq!(r4.per_core.len(), 4);
        assert_eq!(r4.aggregate.loads, 4 * r1.aggregate.loads);
        // Four streaming cores share DRAM bandwidth: wall clock grows, but
        // by far less than 4x-serial.
        assert!(r4.aggregate.cycles < 3 * r1.aggregate.cycles);
        assert!(r4.dram_bytes >= 4 * 16_384 * 64);
    }

    #[test]
    fn bandwidth_contention_slows_each_core() {
        // With the streamers running ahead, each core consumes lines far
        // faster than its demand-serial pace; 8 such streams oversubscribe
        // the DRAM interval and wall-clock time degrades.
        let r1 = run_parallel(cfg(), PrefetcherConfig::hw_default(), 1, stream_work);
        let r8 = run_parallel(cfg(), PrefetcherConfig::hw_default(), 8, stream_work);
        assert!(
            r8.aggregate.cycles > r1.aggregate.cycles * 11 / 10,
            "8 streams must contend: {} vs {}",
            r8.aggregate.cycles,
            r1.aggregate.cycles
        );
    }

    #[test]
    fn shared_l3_lets_cores_reuse_each_others_lines() {
        // Core 0 touches a region; all cores then touch the same region.
        // With a shared L3, later cores hit in L3 far more than DRAM.
        let r = run_parallel(cfg(), PrefetcherConfig::all_off(), 2, |tid, m| {
            let base = 0x2000_0000u64;
            if tid == 1 {
                // Give core 0 a head start by doing local work first.
                for i in 0..50_000 {
                    m.retire(1 + (i % 2));
                }
            }
            for i in 0..4096u64 {
                m.load(OpId(1), base + i * 64, 8);
                m.retire(8);
            }
        });
        let total_dram: u64 = r.aggregate.dram_hits;
        // Both cores demanded 4096 distinct lines; with sharing the total
        // DRAM demand hits stay well below 2 * 4096.
        assert!(
            total_dram < 6000,
            "shared L3 should absorb reuse: {total_dram}"
        );
    }

    #[test]
    fn cancelled_wait_turn_returns_despite_skew() {
        let cancel = Arc::new(AtomicBool::new(true));
        let sync = ClockSync::with_cancel(2, 256, Some(cancel));
        // Core 1 is 100k cycles ahead of core 0 (still at 0): without the
        // token this would spin until core 0 advanced. It must return.
        sync.wait_turn(1, 100_000);
        assert!(sync.is_cancelled());
    }

    #[test]
    fn governed_run_with_untripped_token_matches_plain_run() {
        let cancel = Arc::new(AtomicBool::new(false));
        let r = run_parallel_governed(
            cfg(),
            PrefetcherConfig::all_off(),
            2,
            Some(cancel.clone()),
            stream_work,
        );
        assert_eq!(r.per_core.len(), 2);
        assert_eq!(r.aggregate.loads, 2 * 16_384);
        assert!(!cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn seconds_scale_with_frequency() {
        let r = run_parallel(cfg(), PrefetcherConfig::all_off(), 1, |_, m| {
            m.retire(2_400_000);
        });
        let s = r.seconds(&cfg());
        assert!((s - 2_400_000.0 / 3.0 / 2.4e9).abs() < 1e-9);
    }
}
