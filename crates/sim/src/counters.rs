//! Performance counters, modeled after the PMU events the paper measures
//! (Section 4.4) plus simulator-only visibility (prefetch outcomes, stall
//! breakdown).

/// Per-core event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// INST_RETIRED.ANY equivalent (every executed IR op, incl. memory
    /// ops and prefetches).
    pub instructions: u64,
    /// Core cycles including stalls.
    pub cycles: u64,
    /// Cycles lost to demand-miss stalls.
    pub stall_cycles: u64,

    pub loads: u64,
    pub stores: u64,

    /// Demand hits/misses per level.
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    /// Demand loads served by L3 (MEM_LOAD_UOPS_RETIRED.L3_HIT).
    pub l3_hits: u64,
    /// Demand loads served by DRAM (MEM_LOAD_UOPS_RETIRED.DRAM_HIT).
    pub dram_hits: u64,

    /// Software prefetch instructions executed.
    pub sw_pf_issued: u64,
    /// Dropped for lack of an MSHR slot.
    pub sw_pf_dropped: u64,
    /// Target line already cached or in flight.
    pub sw_pf_redundant: u64,

    /// Hardware prefetch requests issued to the hierarchy.
    pub hw_pf_issued: u64,
    pub hw_pf_dropped: u64,
    pub hw_pf_redundant: u64,

    /// Prefetched lines evicted without ever being demand-referenced
    /// (pollution — the cost of inaccurate prefetching).
    pub pf_unused_evictions: u64,

    /// Lines read from DRAM on behalf of this core (demand + prefetch).
    pub dram_lines_read: u64,
    /// Dirty lines written back to DRAM.
    pub dram_lines_written: u64,

    /// dTLB misses (page walks) on demand accesses.
    pub tlb_misses: u64,
}

impl Counters {
    /// The paper's L2-miss approximation:
    /// `MEM_LOAD_UOPS_RETIRED.DRAM_HIT + MEM_LOAD_UOPS_RETIRED.L3_HIT`.
    pub fn l2_miss_events(&self) -> u64 {
        self.l3_hits + self.dram_hits
    }

    /// L2 misses per kilo-instruction — the x-axis of Figures 6 and 8.
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.l2_miss_events() as f64 * 1000.0 / self.instructions as f64
    }

    /// Total DRAM traffic attributed to this core, in bytes.
    pub fn dram_bytes(&self) -> u64 {
        (self.dram_lines_read + self.dram_lines_written) * crate::config::LINE_BYTES
    }

    /// Merge another core's counters into this one (for aggregate
    /// multi-core reporting). Cycles take the max (wall-clock), events sum.
    pub fn merge_parallel(&mut self, other: &Counters) {
        self.cycles = self.cycles.max(other.cycles);
        self.stall_cycles += other.stall_cycles;
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l3_hits += other.l3_hits;
        self.dram_hits += other.dram_hits;
        self.sw_pf_issued += other.sw_pf_issued;
        self.sw_pf_dropped += other.sw_pf_dropped;
        self.sw_pf_redundant += other.sw_pf_redundant;
        self.hw_pf_issued += other.hw_pf_issued;
        self.hw_pf_dropped += other.hw_pf_dropped;
        self.hw_pf_redundant += other.hw_pf_redundant;
        self.pf_unused_evictions += other.pf_unused_evictions;
        self.dram_lines_read += other.dram_lines_read;
        self.dram_lines_written += other.dram_lines_written;
        self.tlb_misses += other.tlb_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_formula() {
        let c = Counters {
            instructions: 10_000,
            l3_hits: 30,
            dram_hits: 20,
            ..Counters::default()
        };
        assert_eq!(c.l2_miss_events(), 50);
        assert!((c.l2_mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_zero_instructions() {
        assert_eq!(Counters::default().l2_mpki(), 0.0);
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_events() {
        let mut a = Counters {
            cycles: 100,
            instructions: 10,
            dram_lines_read: 1,
            ..Counters::default()
        };
        let b = Counters {
            cycles: 250,
            instructions: 20,
            dram_lines_read: 2,
            ..Counters::default()
        };
        a.merge_parallel(&b);
        assert_eq!(a.cycles, 250);
        assert_eq!(a.instructions, 30);
        assert_eq!(a.dram_bytes(), 3 * 64);
    }
}
