//! Behavioural models of the six Gracemont hardware prefetchers of the
//! paper's Table 2.
//!
//! These are deliberately simple state machines reproducing the
//! *interaction properties* the paper relies on, not microarchitectural
//! replicas:
//!
//! - the L1 IPP tracks only **two** PC streams (the capacity the paper
//!   measured), so SpMV's 4+ concurrent load streams thrash it — which is
//!   why ASaP's Step 1 (prefetching the crd stream in software) pays off;
//! - the next-line prefetchers fire on every miss, so irregular access
//!   streams turn them into pure MSHR/bandwidth waste;
//! - the streamers only engage on confirmed sequential runs, so they help
//!   pos/crd/vals streaming and never the indirect `c[crd[jj]]` accesses;
//! - the L2 AMP speculates on recent miss deltas even at low confidence:
//!   accurate on SpMM's repeating 2D pattern, inaccurate (bandwidth
//!   pressure) on SpMV's random gathers.

use asap_ir::OpId;

/// Where a hardware prefetch wants its fill installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillLevel {
    L1,
    L2,
    L3,
}

/// A request emitted by a hardware prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfRequest {
    pub line: u64,
    pub fill: FillLevel,
}

/// L1 next-line prefetcher: on an L1 miss of line `L`, fetch `L+1`.
#[derive(Debug, Clone, Default)]
pub struct NextLine {
    fill: Option<FillLevel>,
}

impl NextLine {
    pub fn new(fill: FillLevel) -> NextLine {
        NextLine { fill: Some(fill) }
    }

    pub fn on_miss(&mut self, line: u64, out: &mut Vec<PfRequest>) {
        if let Some(fill) = self.fill {
            out.push(PfRequest {
                line: line + 1,
                fill,
            });
        }
    }
}

/// L1 instruction-pointer (stride) prefetcher with a fixed number of PC
/// slots (2 on the evaluation platform, per the paper).
#[derive(Debug, Clone)]
pub struct Ipp {
    slots: Vec<IppSlot>,
    capacity: usize,
    /// Look-ahead in strides once a stream is confirmed.
    pub lookahead: i64,
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct IppSlot {
    pc: OpId,
    last_addr: u64,
    stride: i64,
    conf: u8,
    lru: u64,
}

impl Ipp {
    pub fn new(capacity: usize) -> Ipp {
        Ipp {
            slots: Vec::with_capacity(capacity),
            capacity,
            lookahead: 24,
            stamp: 0,
        }
    }

    /// Observe a demand load; may emit one L1 prefetch.
    pub fn on_load(&mut self, pc: OpId, addr: u64, out: &mut Vec<PfRequest>) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(s) = self.slots.iter_mut().find(|s| s.pc == pc) {
            let delta = addr as i64 - s.last_addr as i64;
            if delta == s.stride && delta != 0 {
                s.conf = s.conf.saturating_add(1);
            } else {
                s.stride = delta;
                s.conf = 0;
            }
            s.last_addr = addr;
            s.lru = stamp;
            if s.conf >= 2 {
                let target = addr as i64 + s.stride * self.lookahead;
                if target >= 0 {
                    out.push(PfRequest {
                        line: crate::cache::line_of(target as u64),
                        fill: FillLevel::L1,
                    });
                }
            }
            return;
        }
        // Miss in the table: evict the LRU slot (stream-capacity thrash).
        if self.slots.len() >= self.capacity {
            let lru = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.slots.swap_remove(lru);
        }
        self.slots.push(IppSlot {
            pc,
            last_addr: addr,
            stride: 0,
            conf: 0,
            lru: stamp,
        });
    }

    /// Number of PCs currently tracked.
    pub fn tracked(&self) -> usize {
        self.slots.len()
    }
}

/// Region-based stream prefetcher (MLC and LLC streamers): detects
/// ascending line runs within 4 KiB regions and prefetches ahead.
#[derive(Debug, Clone)]
pub struct Streamer {
    regions: Vec<StreamSlot>,
    capacity: usize,
    fill: FillLevel,
    /// Prefetch degree once a run is confirmed.
    pub degree: u64,
    stamp: u64,
}

#[derive(Debug, Clone, Copy)]
struct StreamSlot {
    region: u64,
    last_line: u64,
    conf: u8,
    lru: u64,
}

/// Lines per 4 KiB region.
const REGION_LINES: u64 = 64;

impl Streamer {
    pub fn new(capacity: usize, fill: FillLevel, degree: u64) -> Streamer {
        Streamer {
            regions: Vec::with_capacity(capacity),
            capacity,
            fill,
            degree,
            stamp: 0,
        }
    }

    /// Observe an access at this level; may emit prefetches.
    pub fn on_access(&mut self, line: u64, out: &mut Vec<PfRequest>) {
        self.stamp += 1;
        let stamp = self.stamp;
        let region = line / REGION_LINES;
        if let Some(s) = self.regions.iter_mut().find(|s| s.region == region) {
            if line == s.last_line + 1 {
                s.conf = s.conf.saturating_add(1);
            } else if line != s.last_line {
                s.conf = s.conf.saturating_sub(1);
            }
            s.last_line = line;
            s.lru = stamp;
            if s.conf >= 2 {
                let ahead = 2 + (s.conf as u64).min(8);
                for d in 0..self.degree {
                    out.push(PfRequest {
                        line: line + ahead + d,
                        fill: self.fill,
                    });
                }
            }
            return;
        }
        if self.regions.len() >= self.capacity {
            let lru = self
                .regions
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.regions.swap_remove(lru);
        }
        self.regions.push(StreamSlot {
            region,
            last_line: line,
            conf: 0,
            lru: stamp,
        });
    }
}

/// L2 Adaptive Multipath Prefetcher: speculates on recent L2-miss deltas
/// with little confidence gating. Repeating deltas (2D strides, as in
/// SpMM) make it accurate; random gathers (SpMV's `c[crd[jj]]`) make its
/// guesses pure bandwidth waste — the paper's reason to disable it for
/// SpMV (Table 2).
#[derive(Debug, Clone)]
pub struct Amp {
    last_line: Option<u64>,
    deltas: Vec<i64>,
    /// Ring capacity of remembered deltas.
    window: usize,
}

impl Amp {
    pub fn new() -> Amp {
        Amp {
            last_line: None,
            deltas: Vec::with_capacity(8),
            window: 8,
        }
    }

    /// Observe an L2 demand miss; emits up to two speculative prefetches.
    pub fn on_l2_miss(&mut self, line: u64, out: &mut Vec<PfRequest>) {
        let Some(last) = self.last_line.replace(line) else {
            return;
        };
        let delta = line as i64 - last as i64;
        if delta == 0 {
            return;
        }
        if self.deltas.len() >= self.window {
            self.deltas.remove(0);
        }
        self.deltas.push(delta);

        // Confirmed path: a delta seen at least twice recently.
        let confirmed = self
            .deltas
            .iter()
            .find(|&&d| self.deltas.iter().filter(|&&x| x == d).count() >= 2)
            .copied();
        // Speculative path: always chase the most recent delta.
        let speculative = delta;
        let mut push = |d: i64| {
            let t = line as i64 + d;
            if t >= 0 {
                out.push(PfRequest {
                    line: t as u64,
                    fill: FillLevel::L2,
                });
            }
        };
        push(speculative);
        if let Some(c) = confirmed {
            if c != speculative {
                push(c);
            }
        }
    }
}

impl Default for Amp {
    fn default() -> Self {
        Amp::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_fetches_successor() {
        let mut n = NextLine::new(FillLevel::L1);
        let mut out = Vec::new();
        n.on_miss(100, &mut out);
        assert_eq!(
            out,
            vec![PfRequest {
                line: 101,
                fill: FillLevel::L1
            }]
        );
    }

    #[test]
    fn ipp_confirms_stride_then_prefetches() {
        let mut ipp = Ipp::new(2);
        let mut out = Vec::new();
        let pc = OpId(7);
        for i in 0..5u64 {
            ipp.on_load(pc, 0x1000 + i * 8, &mut out);
        }
        assert!(!out.is_empty(), "stride stream must trigger prefetches");
        let expect = crate::cache::line_of(0x1000 + 4 * 8 + 8 * 24);
        assert_eq!(out.last().unwrap().line, expect);
    }

    #[test]
    fn ipp_two_streams_fit_three_thrash() {
        // Two alternating streams: both confirm.
        let mut ipp = Ipp::new(2);
        let mut out = Vec::new();
        for i in 0..8u64 {
            ipp.on_load(OpId(1), 0x1000 + i * 8, &mut out);
            ipp.on_load(OpId(2), 0x9000 + i * 8, &mut out);
        }
        assert!(out.len() >= 8, "two streams fit in two slots");

        // Three round-robin streams on two slots: LRU thrash, no stream
        // ever confirms — the paper's SpMV observation.
        let mut ipp = Ipp::new(2);
        let mut out = Vec::new();
        for i in 0..32u64 {
            ipp.on_load(OpId(1), 0x1000 + i * 8, &mut out);
            ipp.on_load(OpId(2), 0x9000 + i * 8, &mut out);
            ipp.on_load(OpId(3), 0x20000 + i * 8, &mut out);
        }
        assert!(out.is_empty(), "3 streams thrash a 2-entry table: {out:?}");
    }

    #[test]
    fn ipp_irregular_stream_never_confirms() {
        let mut ipp = Ipp::new(2);
        let mut out = Vec::new();
        let addrs = [0x1000u64, 0x5040, 0x2980, 0x88c0, 0x1180, 0x9000];
        for &a in &addrs {
            ipp.on_load(OpId(1), a, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn streamer_engages_on_sequential_runs() {
        let mut s = Streamer::new(16, FillLevel::L2, 2);
        let mut out = Vec::new();
        for l in 100..110u64 {
            s.on_access(l, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|r| r.fill == FillLevel::L2));
        assert!(out.iter().all(|r| r.line > 109 - 9), "prefetches run ahead");
    }

    #[test]
    fn streamer_ignores_random_accesses() {
        let mut s = Streamer::new(16, FillLevel::L3, 4);
        let mut out = Vec::new();
        for l in [5u64, 900, 17, 3000, 42, 1234, 77, 2500] {
            s.on_access(l, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn amp_accurate_on_repeating_stride() {
        let mut a = Amp::new();
        let mut out = Vec::new();
        for i in 0..6u64 {
            a.on_l2_miss(1000 + i * 16, &mut out);
        }
        // Guesses chase delta 16: next guess from line 1080 is 1096.
        assert!(out.contains(&PfRequest {
            line: 1096,
            fill: FillLevel::L2
        }));
    }

    #[test]
    fn amp_wastes_bandwidth_on_random_misses() {
        let mut a = Amp::new();
        let mut out = Vec::new();
        let lines = [10u64, 995, 47, 3301, 228, 1771];
        for &l in &lines {
            a.on_l2_miss(l, &mut out);
        }
        // It still speculates (that is the point), but none of the guesses
        // match any later actual miss.
        assert!(!out.is_empty());
        for r in &out {
            assert!(!lines.contains(&r.line));
        }
    }
}
