//! Human-readable summaries of a run's [`Counters`] — the simulator's
//! answer to `perf stat`.

use crate::config::GracemontConfig;
use crate::counters::Counters;
use std::fmt::Write;

/// Derived rates of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    pub ipc: f64,
    pub l1_miss_rate: f64,
    pub l2_miss_rate: f64,
    pub l2_mpki: f64,
    pub stall_fraction: f64,
    /// Fraction of software prefetches that were dropped.
    pub sw_pf_drop_rate: f64,
    /// Fraction of software prefetches that were redundant.
    pub sw_pf_redundant_rate: f64,
    /// DRAM bandwidth actually consumed, bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Fraction of issued software prefetches whose line was later
    /// demanded — from the trace-based effectiveness analyzer
    /// (`asap-obs`), not derivable from [`Counters`] alone. 0.0 until
    /// [`Rates::with_sw_pf_effectiveness`] fills it in.
    pub sw_pf_accuracy: f64,
    /// Fraction of demand loads whose line had a prior software
    /// prefetch — same provenance as `sw_pf_accuracy`.
    pub sw_pf_coverage: f64,
}

impl Rates {
    pub fn of(c: &Counters) -> Rates {
        let div = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        Rates {
            ipc: div(c.instructions, c.cycles),
            l1_miss_rate: div(c.l1_misses, c.l1_hits + c.l1_misses),
            l2_miss_rate: div(c.l2_misses, c.l2_hits + c.l2_misses),
            l2_mpki: c.l2_mpki(),
            stall_fraction: div(c.stall_cycles, c.cycles),
            sw_pf_drop_rate: div(c.sw_pf_dropped, c.sw_pf_issued),
            sw_pf_redundant_rate: div(c.sw_pf_redundant, c.sw_pf_issued),
            dram_bytes_per_cycle: div(c.dram_bytes(), c.cycles),
            sw_pf_accuracy: 0.0,
            sw_pf_coverage: 0.0,
        }
    }

    /// Merge the trace-analyzer's raw tallies: `useful` of `issued`
    /// prefetched lines were demanded, and `covered` of `demand` loads
    /// hit a prefetched line. Zero denominators yield 0.0 rates.
    pub fn with_sw_pf_effectiveness(
        mut self,
        useful: u64,
        issued: u64,
        covered: u64,
        demand: u64,
    ) -> Rates {
        let div = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        self.sw_pf_accuracy = div(useful, issued);
        self.sw_pf_coverage = div(covered, demand);
        self
    }
}

/// Render a perf-stat-style block.
pub fn summarize(c: &Counters, cfg: &GracemontConfig) -> String {
    let r = Rates::of(c);
    let mut s = String::new();
    let secs = cfg.cycles_to_seconds(c.cycles);
    let _ = writeln!(
        s,
        "{:>14} cycles ({:.3} ms @ {:.1} GHz)",
        c.cycles,
        secs * 1e3,
        cfg.freq_hz as f64 / 1e9
    );
    let _ = writeln!(s, "{:>14} instructions ({:.2} IPC)", c.instructions, r.ipc);
    let _ = writeln!(
        s,
        "{:>14} stall cycles ({:.1}%)",
        c.stall_cycles,
        100.0 * r.stall_fraction
    );
    let _ = writeln!(s, "{:>14} loads, {} stores", c.loads, c.stores);
    let _ = writeln!(
        s,
        "{:>14} L1 misses ({:.2}% of accesses)",
        c.l1_misses,
        100.0 * r.l1_miss_rate
    );
    let _ = writeln!(
        s,
        "{:>14} L2 misses ({:.2} MPKI)",
        c.l2_miss_events(),
        r.l2_mpki
    );
    let _ = writeln!(s, "{:>14} L3 hits, {} DRAM hits", c.l3_hits, c.dram_hits);
    let _ = writeln!(s, "{:>14} dTLB walks", c.tlb_misses);
    let _ = writeln!(
        s,
        "{:>14} sw prefetches ({:.1}% dropped, {:.1}% redundant)",
        c.sw_pf_issued,
        100.0 * r.sw_pf_drop_rate,
        100.0 * r.sw_pf_redundant_rate
    );
    let _ = writeln!(
        s,
        "{:>14} hw prefetches ({} unused evictions)",
        c.hw_pf_issued, c.pf_unused_evictions
    );
    let _ = writeln!(
        s,
        "{:>14.1} MB DRAM traffic ({:.2} B/cycle)",
        c.dram_bytes() as f64 / 1e6,
        r.dram_bytes_per_cycle
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counters {
        Counters {
            instructions: 3000,
            cycles: 1000,
            stall_cycles: 250,
            loads: 900,
            stores: 100,
            l1_hits: 800,
            l1_misses: 200,
            l2_hits: 150,
            l2_misses: 50,
            l3_hits: 30,
            dram_hits: 20,
            sw_pf_issued: 100,
            sw_pf_dropped: 10,
            sw_pf_redundant: 5,
            dram_lines_read: 20,
            ..Counters::default()
        }
    }

    #[test]
    fn rates_are_computed() {
        let r = Rates::of(&sample());
        assert!((r.ipc - 3.0).abs() < 1e-12);
        assert!((r.l1_miss_rate - 0.2).abs() < 1e-12);
        assert!((r.l2_miss_rate - 0.25).abs() < 1e-12);
        assert!((r.stall_fraction - 0.25).abs() < 1e-12);
        assert!((r.sw_pf_drop_rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_counters_do_not_divide_by_zero() {
        let r = Rates::of(&Counters::default());
        assert_eq!(r.ipc, 0.0);
        assert_eq!(r.l2_mpki, 0.0);
        assert_eq!(r.sw_pf_accuracy, 0.0);
        assert_eq!(r.sw_pf_coverage, 0.0);
    }

    #[test]
    fn effectiveness_rates_fill_in() {
        let r = Rates::of(&sample()).with_sw_pf_effectiveness(80, 100, 30, 60);
        assert!((r.sw_pf_accuracy - 0.8).abs() < 1e-12);
        assert!((r.sw_pf_coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effectiveness_zero_denominators_stay_zero() {
        // No prefetches issued at all.
        let r = Rates::of(&sample()).with_sw_pf_effectiveness(0, 0, 5, 10);
        assert_eq!(r.sw_pf_accuracy, 0.0);
        assert!((r.sw_pf_coverage - 0.5).abs() < 1e-12);
        // No demand loads in the trace window.
        let r = Rates::of(&sample()).with_sw_pf_effectiveness(1, 2, 0, 0);
        assert!((r.sw_pf_accuracy - 0.5).abs() < 1e-12);
        assert_eq!(r.sw_pf_coverage, 0.0);
        // Both empty.
        let r = Rates::of(&Counters::default()).with_sw_pf_effectiveness(0, 0, 0, 0);
        assert_eq!((r.sw_pf_accuracy, r.sw_pf_coverage), (0.0, 0.0));
    }

    #[test]
    fn summary_mentions_key_lines() {
        let s = summarize(&sample(), &GracemontConfig::scaled());
        for needle in [
            "instructions",
            "MPKI",
            "sw prefetches",
            "DRAM traffic",
            "dTLB",
        ] {
            assert!(s.contains(needle), "missing {needle}:\n{s}");
        }
    }
}
