//! DRAM model: fixed access latency plus a bandwidth queue.
//!
//! Bandwidth is modeled as a service-slot scheduler: line transfers are
//! granted slots no closer together than `line_interval` cycles, so a
//! burst of requests (demand misses, software prefetches, *and* the
//! inaccurate requests of misconfigured hardware prefetchers) queues up
//! and sees growing effective latency — the "bandwidth pressure" the
//! paper attributes to the L2 AMP on SpMV.

/// The DRAM controller shared by all cores.
///
/// The slot chain advances by `line_interval` per transfer but is allowed
/// to lag at most `burst_lines` transfers behind the requester's clock.
/// This bounds queueing to actual bandwidth oversubscription: in
/// multi-core runs the cores' local clocks are only loosely synchronized,
/// and without the bound a fast core's clock would ratchet the slot chain
/// forward and spuriously serialize every other core at full latency.
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    line_interval: u64,
    next_slot: u64,
    burst_window: u64,
    /// Total line transfers serviced (reads + writebacks).
    pub lines_transferred: u64,
}

/// Burst headroom in cycles. Must exceed the multi-core clock-sync
/// quantum (see `multicore::ClockSync`) so that bounded cross-core clock
/// skew never masquerades as bandwidth backlog.
const BURST_WINDOW_CYCLES: u64 = 1024;

impl Dram {
    pub fn new(latency: u64, line_interval: u64) -> Dram {
        Dram {
            latency,
            line_interval,
            next_slot: 0,
            burst_window: BURST_WINDOW_CYCLES.max(64 * line_interval),
            lines_transferred: 0,
        }
    }

    fn take_slot(&mut self, now: u64) -> u64 {
        let slot = self.next_slot.max(now.saturating_sub(self.burst_window));
        self.next_slot = slot + self.line_interval;
        slot
    }

    /// Request a line read at `now`; returns the cycle the data arrives.
    pub fn read(&mut self, now: u64) -> u64 {
        let slot = self.take_slot(now);
        self.lines_transferred += 1;
        slot.max(now) + self.latency
    }

    /// Queue a writeback at `now` (consumes a bandwidth slot; the core
    /// never waits for it).
    pub fn writeback(&mut self, now: u64) {
        self.take_slot(now);
        self.lines_transferred += 1;
    }

    /// Current queueing delay experienced by a request issued at `now`.
    pub fn queue_delay(&self, now: u64) -> u64 {
        self.next_slot.saturating_sub(now)
    }

    pub fn bytes_transferred(&self) -> u64 {
        self.lines_transferred * crate::config::LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_read_costs_latency() {
        let mut d = Dram::new(200, 2);
        assert_eq!(d.read(1000), 1200);
    }

    #[test]
    fn back_to_back_reads_queue() {
        let mut d = Dram::new(200, 2);
        assert_eq!(d.read(0), 200);
        assert_eq!(d.read(0), 202);
        assert_eq!(d.read(0), 204);
        assert_eq!(d.lines_transferred, 3);
    }

    #[test]
    fn idle_gap_resets_queue() {
        let mut d = Dram::new(200, 2);
        d.read(0);
        assert_eq!(d.read(1000), 1200);
    }

    #[test]
    fn writebacks_consume_bandwidth() {
        let mut d = Dram::new(200, 2);
        d.writeback(0);
        assert_eq!(d.read(0), 202);
        assert_eq!(d.bytes_transferred(), 128);
    }

    #[test]
    fn queue_delay_reflects_backlog() {
        let mut d = Dram::new(200, 4);
        for _ in 0..10 {
            d.read(0);
        }
        assert_eq!(d.queue_delay(0), 40);
        assert_eq!(d.queue_delay(100), 0);
    }
}
