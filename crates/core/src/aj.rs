//! The Ainsworth & Jones baseline: a *post-hoc, low-level* software
//! prefetching pass (CGO'17 / TOCS'18), reimplemented over our IR.
//!
//! Faithful to the two properties the paper contrasts ASaP against:
//!
//! 1. **Detection is pattern matching on lowered code.** The pass scans
//!    each loop's directly-contained ops for an indirect chain
//!    `r = load M1[iv]` → `load M2[f(r)]`. It does not look across loop
//!    levels, so SpMM — whose dependent loads sit in the nested dense
//!    `k` loop — gets **no prefetches**, matching the paper's observation
//!    that the public artifact "would not generate prefetches for SpMM"
//!    (Section 5.3).
//! 2. **Bounds come from loop limits.** The look-ahead load is clamped to
//!    the enclosing loop's upper bound (the *segment* end for sparsified
//!    code), per lines 8–10 of page 8 of the TOCS paper. Prefetching
//!    therefore stops `distance` iterations before each segment end and
//!    misses the first `distance` elements of the next segment — the
//!    short-row weakness Figure 11 measures.

use asap_ir::{BinOp, CmpPred, Function, Literal, Op, OpKind, Region, Type, Value};

/// Configuration for the baseline pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AjConfig {
    /// Look-ahead distance in loop iterations (45 in the evaluation).
    pub distance: usize,
    /// Locality hint for generated prefetches.
    pub locality: u8,
}

impl AjConfig {
    pub fn paper() -> AjConfig {
        AjConfig {
            distance: 45,
            locality: 2,
        }
    }

    pub fn with_distance(distance: usize) -> AjConfig {
        AjConfig {
            distance,
            locality: 2,
        }
    }
}

impl Default for AjConfig {
    fn default() -> Self {
        AjConfig::paper()
    }
}

/// How a dependent load's index derives from the first load's result.
#[derive(Debug, Clone, Copy)]
enum Deriv {
    /// `M2[r]` directly.
    Direct,
    /// `M2[index_cast(r)]`.
    Cast,
    /// `M2[index_cast(r) * s]` (or `r * s`) with `s` loop-invariant.
    Scaled(Value),
}

/// One discovered indirect chain.
struct Site {
    /// Position (in the loop body's op list) of the first load.
    first_pos: usize,
    /// The first load's buffer (`M1`) and the loop induction variable.
    m1: Value,
    iv: Value,
    /// Loop upper bound — the A&J prefetch bound.
    hi: Value,
    /// Dependent loads: (target buffer, derivation).
    deps: Vec<(Value, Deriv)>,
}

/// Apply the pass to a function. Returns the number of instrumented
/// indirect chains.
pub fn ainsworth_jones(func: &mut Function, cfg: &AjConfig) -> usize {
    let mut body = std::mem::take(&mut func.body);
    let n = instrument_region(func, &mut body, cfg);
    func.body = body;
    n
}

fn instrument_region(f: &mut Function, r: &mut Region, cfg: &AjConfig) -> usize {
    let mut count = 0;
    for op in &mut r.ops {
        // Recurse first so inner loops are handled before their parents.
        let mut nested: Vec<&mut Region> = op.kind.regions_mut();
        for nr in nested.iter_mut() {
            count += instrument_region(f, nr, cfg);
        }
    }
    for op in &mut r.ops {
        if let OpKind::For { iv, hi, body, .. } = &mut op.kind {
            let (iv, hi) = (*iv, *hi);
            count += instrument_loop(f, body, iv, hi, cfg);
        }
    }
    count
}

/// Find indirect chains among the directly-contained ops of a loop body
/// and splice prefetch sequences in front of each chain's first load.
fn instrument_loop(
    f: &mut Function,
    body: &mut Region,
    iv: Value,
    hi: Value,
    cfg: &AjConfig,
) -> usize {
    // First loads: r = load M1[iv].
    let mut sites: Vec<Site> = Vec::new();
    for (pos, op) in body.ops.iter().enumerate() {
        let OpKind::Load { mem, index } = op.kind else {
            continue;
        };
        if index != iv {
            continue;
        }
        let r1 = op.results[0];
        // Resolve derivations of other loads' indices from r1.
        let mut deps = Vec::new();
        for dep in &body.ops[pos + 1..] {
            let OpKind::Load {
                mem: m2,
                index: idx2,
            } = dep.kind
            else {
                continue;
            };
            if m2 == mem {
                continue; // same-buffer load is the stream itself
            }
            if let Some(d) = derive(body, r1, idx2) {
                deps.push((m2, d));
            }
        }
        if !deps.is_empty() {
            sites.push(Site {
                first_pos: pos,
                m1: mem,
                iv,
                hi,
                deps,
            });
        }
    }

    // Splice last-first so recorded positions stay valid.
    let n = sites.len();
    for site in sites.into_iter().rev() {
        let seq = build_sequence(f, &site, cfg);
        for (k, op) in seq.into_iter().enumerate() {
            body.ops.insert(site.first_pos + k, op);
        }
    }
    n
}

/// Is `idx` derived from `r1` by (cast | cast+scale | identity)?
fn derive(body: &Region, r1: Value, idx: Value) -> Option<Deriv> {
    if idx == r1 {
        return Some(Deriv::Direct);
    }
    // Find the defining op of `idx` among the body's top-level ops.
    let def = body
        .ops
        .iter()
        .find(|op| op.results.contains(&idx))
        .map(|op| &op.kind)?;
    match def {
        OpKind::Cast { value, .. } if *value == r1 => Some(Deriv::Cast),
        OpKind::Binary {
            op: BinOp::MulI,
            lhs,
            rhs,
        } => {
            // lhs must itself derive (direct or cast); rhs is the scale.
            match derive(body, r1, *lhs)? {
                Deriv::Direct | Deriv::Cast => Some(Deriv::Scaled(*rhs)),
                Deriv::Scaled(_) => None,
            }
        }
        _ => None,
    }
}

/// Emit the three-step sequence with the loop-bound clamp.
fn build_sequence(f: &mut Function, site: &Site, cfg: &AjConfig) -> Vec<Op> {
    let mut fac = OpFactory { f, ops: Vec::new() };
    // Step 1: prefetch M1[iv + 2*distance].
    let c2d = fac.const_index(2 * cfg.distance);
    let i2 = fac.binary(BinOp::AddI, site.iv, c2d, Type::Index);
    fac.prefetch(site.m1, i2, cfg.locality);
    // Step 2: t = M1[min(iv + distance, hi - 1)] — the loop-bound clamp.
    let cd = fac.const_index(cfg.distance);
    let jd = fac.binary(BinOp::AddI, site.iv, cd, Type::Index);
    let c1 = fac.const_index(1);
    let bnd = fac.binary(BinOp::SubI, site.hi, c1, Type::Index);
    let cmp = fac.cmpi(CmpPred::Ult, jd, bnd);
    let m = fac.select(cmp, jd, bnd, Type::Index);
    // invariant: site.m1 is the `mem` operand of a Load op, and verified
    // IR only loads from memref-typed values.
    let elem = fac.f.ty(site.m1).elem().expect("M1 is a memref").clone();
    let t = fac.load(site.m1, m, elem.clone());
    // Step 3: prefetch each dependent buffer at the derived index.
    for &(m2, d) in &site.deps {
        let idx = match d {
            Deriv::Direct => t,
            Deriv::Cast => fac.cast(t, Type::Index),
            Deriv::Scaled(s) => {
                let c = if elem == Type::Index {
                    t
                } else {
                    fac.cast(t, Type::Index)
                };
                fac.binary(BinOp::MulI, c, s, Type::Index)
            }
        };
        fac.prefetch(m2, idx, cfg.locality);
    }
    fac.ops
}

/// Builds ops directly on a [`Function`] (fresh values + op ids) without
/// a region stack — used when splicing into existing regions.
struct OpFactory<'f> {
    f: &'f mut Function,
    ops: Vec<Op>,
}

impl<'f> OpFactory<'f> {
    // invariant: every `.expect` below fires only if `push` is called with
    // `Some(ty)` yet returns `None`, which its body makes impossible.
    fn push(&mut self, kind: OpKind, result_ty: Option<Type>) -> Option<Value> {
        let results = match result_ty {
            Some(t) => vec![self.f.fresh_value(t)],
            None => vec![],
        };
        let id = self.f.fresh_op_id();
        let out = results.first().copied();
        self.ops.push(Op { id, kind, results });
        out
    }

    fn const_index(&mut self, v: usize) -> Value {
        self.push(OpKind::Const(Literal::Index(v)), Some(Type::Index))
            .expect("const has a result")
    }

    fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value, ty: Type) -> Value {
        self.push(OpKind::Binary { op, lhs, rhs }, Some(ty))
            .expect("binary has a result")
    }

    fn cmpi(&mut self, pred: CmpPred, lhs: Value, rhs: Value) -> Value {
        self.push(OpKind::Cmp { pred, lhs, rhs }, Some(Type::I1))
            .expect("cmp has a result")
    }

    fn select(&mut self, cond: Value, if_true: Value, if_false: Value, ty: Type) -> Value {
        self.push(
            OpKind::Select {
                cond,
                if_true,
                if_false,
            },
            Some(ty),
        )
        .expect("select has a result")
    }

    fn load(&mut self, mem: Value, index: Value, elem: Type) -> Value {
        self.push(OpKind::Load { mem, index }, Some(elem))
            .expect("load has a result")
    }

    fn cast(&mut self, value: Value, to: Type) -> Value {
        self.push(
            OpKind::Cast {
                value,
                to: to.clone(),
            },
            Some(to),
        )
        .expect("cast has a result")
    }

    fn prefetch(&mut self, mem: Value, index: Value, locality: u8) {
        self.push(
            OpKind::Prefetch {
                mem,
                index,
                write: false,
                locality,
            },
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_ir::verify;
    use asap_sparsifier::{sparsify, KernelSpec};
    use asap_tensor::{Format, IndexWidth, ValueKind};

    fn spmv_kernel(width: IndexWidth) -> Function {
        let spec = KernelSpec::spmv(ValueKind::F64);
        sparsify(&spec, &Format::csr(), width, None).unwrap().func
    }

    #[test]
    fn instruments_csr_spmv_inner_loop() {
        let mut f = spmv_kernel(IndexWidth::U64);
        let n = ainsworth_jones(&mut f, &AjConfig::paper());
        assert_eq!(n, 1);
        assert_eq!(f.prefetch_count(), 2);
        verify(&f).unwrap();
    }

    #[test]
    fn handles_narrow_indices_with_cast() {
        let mut f = spmv_kernel(IndexWidth::U32);
        let n = ainsworth_jones(&mut f, &AjConfig::paper());
        assert_eq!(n, 1);
        verify(&f).unwrap();
        // The generated look-ahead load yields i32 and must be cast.
        let text = asap_ir::print_function(&f);
        assert!(text.contains("arith.index_cast"));
    }

    #[test]
    fn generates_nothing_for_spmm() {
        // The paper's key comparison point (Section 5.3): the dependent
        // loads live in the nested k loop, invisible to the low-level
        // pattern matcher.
        let spec = KernelSpec::spmm(ValueKind::F64);
        let mut k = sparsify(&spec, &Format::csr(), IndexWidth::U64, None).unwrap();
        let n = ainsworth_jones(&mut k.func, &AjConfig::paper());
        assert_eq!(n, 0);
        assert_eq!(k.func.prefetch_count(), 0);
    }

    #[test]
    fn instruments_coo_segment_loop() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let mut k = sparsify(&spec, &Format::coo(), IndexWidth::U64, None).unwrap();
        let n = ainsworth_jones(&mut k.func, &AjConfig::paper());
        assert_eq!(n, 1);
        verify(&k.func).unwrap();
    }

    #[test]
    fn bound_uses_loop_limit_not_buffer_size() {
        let mut f = spmv_kernel(IndexWidth::U64);
        ainsworth_jones(&mut f, &AjConfig::paper());
        let text = asap_ir::print_function(&f);
        // A&J must NOT contain the semantic size chain: no multiplication
        // by the row count appears (ASaP's chain contains arith.muli for
        // the dense level step).
        assert!(!text.contains("arith.muli"), "{text}");
    }

    #[test]
    fn preserves_results_on_spmv() {
        use asap_ir::NullModel;
        use asap_sparsifier::run;
        use asap_tensor::{CooTensor, DenseTensor, SparseTensor, Values};
        let spec = KernelSpec::spmv(ValueKind::F64);
        let mut k = sparsify(&spec, &Format::csr(), IndexWidth::U32, None).unwrap();
        ainsworth_jones(&mut k.func, &AjConfig::with_distance(2));
        verify(&k.func).unwrap();
        let coo = CooTensor::new(
            vec![3, 3],
            vec![0, 0, 0, 2, 2, 2],
            Values::F64(vec![1.0, 2.0, 3.0]),
        );
        let sparse = SparseTensor::from_coo(&coo, Format::csr());
        let c = DenseTensor::from_f64(vec![3], vec![1.0, 10.0, 100.0]);
        let mut a = DenseTensor::zeros(ValueKind::F64, vec![3]);
        run(&k, &sparse, &[&c], &mut a, &mut NullModel).unwrap();
        assert_eq!(a.as_f64(), &[201.0, 0.0, 300.0]);
    }
}
