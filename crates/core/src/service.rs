//! Request-level compile-and-execute entry point.
//!
//! `asap-serve` and the load harness both need the same unit of work:
//! given a sparse matrix, a kernel choice, a strategy, an engine, and a
//! resource budget, compile through the sharded cache and execute on
//! deterministic operands, returning a checksummed [`ServiceOutcome`].
//! Pulling that unit into `asap-core` keeps the daemon a thin transport
//! layer and — more importantly — makes "the server returns exactly what
//! a direct library call returns" a testable statement:
//! `tests/serve.rs` compares [`serve_request`] run in-process against
//! the JSON a live server produces, bit for bit (via the checksum).
//!
//! Determinism contract: the dense operands depend only on the matrix
//! shape — `x[i] = 0.25 + (i % 31) * 0.125` for SpMV and
//! `c[i] = 0.5 + (i % 13) * 0.25` for SpMM — the same generator
//! patterns the bench harness uses, so a served result is comparable
//! against any other run of the same (matrix, kernel, variant).

use crate::cache::compile_cached_stat;
use crate::pipeline::{
    run_spmv_f64_budgeted, run_with_engine_budgeted, CompiledKernel, ExecEngine, PrefetchStrategy,
};
use asap_ir::{AsapError, Budget, NullModel};
use asap_sparsifier::KernelSpec;
use asap_tensor::{DenseTensor, SparseTensor, ValueKind};
use std::time::Instant;

/// Which kernel a request names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceKernel {
    Spmv,
    /// SpMM with the given dense-operand column count.
    Spmm {
        cols: usize,
    },
}

impl ServiceKernel {
    pub fn spec(&self) -> KernelSpec {
        match self {
            ServiceKernel::Spmv => KernelSpec::spmv(ValueKind::F64),
            ServiceKernel::Spmm { .. } => KernelSpec::spmm(ValueKind::F64),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            ServiceKernel::Spmv => "spmv",
            ServiceKernel::Spmm { .. } => "spmm",
        }
    }
}

/// Everything a response needs about one executed request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// FNV-1a over the little-endian bit patterns of the output f64s —
    /// the bit-exactness witness across engines, strategies applied to
    /// the same kernel, and the server/direct-call boundary.
    pub checksum: u64,
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    /// Wall-clock of the (cached) compile step, nanoseconds.
    pub compile_ns: u64,
    /// Wall-clock of bind + execute + read-back, nanoseconds.
    pub exec_ns: u64,
    /// True if the kernel came from the compile cache.
    pub cache_hit: bool,
    /// True if the requested strategy degraded to baseline.
    pub degraded: bool,
    /// Rendered compile warnings (empty unless degraded).
    pub warnings: Vec<String>,
    /// Engine that actually ran: "tier2", "bytecode", or "tree-walk".
    pub engine_used: &'static str,
    /// `memref.prefetch` ops in the kernel that ran.
    pub prefetch_ops: usize,
}

/// FNV-1a 64 over a byte slice — the workspace's one content digest,
/// shared by response checksums, matrix-store keys, and the serving
/// layer's witness fingerprints so equal bytes always hash equal
/// everywhere.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the bit patterns of a slice of f64s.
pub fn checksum_f64(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        h = v.to_bits().to_le_bytes().iter().fold(h, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
    }
    h
}

/// The deterministic SpMV input vector for an `n`-column matrix.
pub fn service_x(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.25 + (i % 31) as f64 * 0.125).collect()
}

/// The deterministic SpMM dense operand for an `n × cols` product.
pub fn service_c(n: usize, cols: usize) -> DenseTensor {
    DenseTensor::from_f64(
        vec![n, cols],
        (0..n * cols)
            .map(|i| 0.5 + (i % 13) as f64 * 0.25)
            .collect(),
    )
}

/// Compile step, separated out so a coalescing layer can single-flight
/// it: returns the kernel, whether it was a cache hit, and the compile
/// wall-clock.
pub fn compile_for(
    kernel: ServiceKernel,
    sparse: &SparseTensor,
    strategy: &PrefetchStrategy,
) -> Result<(CompiledKernel, bool, u64), AsapError> {
    let t0 = Instant::now();
    let (ck, hit) = compile_cached_stat(
        &kernel.spec(),
        sparse.format(),
        sparse.index_width(),
        strategy,
    )?;
    Ok((ck, hit, t0.elapsed().as_nanos() as u64))
}

/// Execute a compiled kernel on the deterministic operands under the
/// given budget, producing the checksummed outcome (with `compile_ns`
/// and `cache_hit` filled in from the separated compile step).
pub fn execute_request(
    ck: &CompiledKernel,
    kernel: ServiceKernel,
    sparse: &SparseTensor,
    engine: ExecEngine,
    budget: &Budget,
    cache_hit: bool,
    compile_ns: u64,
) -> Result<ServiceOutcome, AsapError> {
    let rows = sparse.dims()[0];
    let cols = sparse.dims()[1];
    // The service always executes under `NullModel`, so the one
    // observable tier-2 gives up — the memory-event stream — is moot
    // here. `Auto` therefore upgrades to the native specialization
    // whenever the compile produced one; explicit engine requests are
    // honored verbatim.
    let engine = match engine {
        ExecEngine::Auto if ck.tier2.is_some() => ExecEngine::Tier2,
        e => e,
    };
    let t0 = Instant::now();
    let checksum = match kernel {
        ServiceKernel::Spmv => {
            let x = service_x(cols);
            let y = run_spmv_f64_budgeted(ck, sparse, &x, &mut NullModel, engine, budget)?;
            checksum_f64(&y)
        }
        ServiceKernel::Spmm { cols: k } => {
            if k == 0 {
                return Err(AsapError::binding("spmm column count must be positive"));
            }
            let c = service_c(cols, k);
            let mut out = DenseTensor::zeros(ValueKind::F64, vec![rows, k]);
            run_with_engine_budgeted(ck, sparse, &[&c], &mut out, &mut NullModel, engine, budget)?;
            checksum_f64(out.as_f64())
        }
    };
    let exec_ns = t0.elapsed().as_nanos() as u64;
    let engine_used = match engine {
        ExecEngine::TreeWalk => "tree-walk",
        ExecEngine::Tier2 => "tier2",
        _ if ck.program.is_some() => "bytecode",
        _ => "tree-walk",
    };
    Ok(ServiceOutcome {
        checksum,
        rows,
        cols,
        nnz: sparse.nnz(),
        compile_ns,
        exec_ns,
        cache_hit,
        degraded: ck.is_degraded(),
        warnings: ck.warnings.iter().map(|w| w.to_string()).collect(),
        engine_used,
        prefetch_ops: ck.prefetch_ops,
    })
}

/// The whole request in one call: compile through the cache, then
/// execute. The direct-call reference the serving tests compare the
/// daemon against.
pub fn serve_request(
    kernel: ServiceKernel,
    sparse: &SparseTensor,
    strategy: &PrefetchStrategy,
    engine: ExecEngine,
    budget: &Budget,
) -> Result<ServiceOutcome, AsapError> {
    let (ck, hit, compile_ns) = compile_for(kernel, sparse, strategy)?;
    execute_request(&ck, kernel, sparse, engine, budget, hit, compile_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_tensor::{CooTensor, Format, Values};

    fn tiny_matrix() -> SparseTensor {
        // 4x5, 7 nnz, deterministic values (row-major sorted coords).
        let coords = vec![0, 0, 0, 3, 1, 1, 2, 0, 2, 2, 2, 4, 3, 3];
        let vals = Values::F64(vec![1.0, 2.0, 3.5, -1.0, 0.5, 4.0, 2.25]);
        let coo = CooTensor::try_new(vec![4, 5], coords, vals).unwrap();
        SparseTensor::try_from_coo(&coo, Format::csr()).unwrap()
    }

    #[test]
    fn spmv_checksum_matches_manual_compute() {
        let sparse = tiny_matrix();
        let out = serve_request(
            ServiceKernel::Spmv,
            &sparse,
            &PrefetchStrategy::asap(4),
            ExecEngine::Auto,
            &Budget::unlimited(),
        )
        .unwrap();
        // y = A * service_x(5), dense reference.
        let x = service_x(5);
        let a = [
            [1.0, 0.0, 0.0, 2.0, 0.0],
            [0.0, 3.5, 0.0, 0.0, 0.0],
            [-1.0, 0.0, 0.5, 0.0, 4.0],
            [0.0, 0.0, 0.0, 2.25, 0.0],
        ];
        let y: Vec<f64> = a
            .iter()
            .map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum())
            .collect();
        assert_eq!(out.checksum, checksum_f64(&y));
        assert_eq!((out.rows, out.cols, out.nnz), (4, 5, 7));
        assert!(out.prefetch_ops > 0, "asap strategy injects prefetches");
        assert!(!out.degraded);
    }

    #[test]
    fn engines_agree_on_the_checksum() {
        let sparse = tiny_matrix();
        let run = |engine| {
            serve_request(
                ServiceKernel::Spmm { cols: 3 },
                &sparse,
                &PrefetchStrategy::none(),
                engine,
                &Budget::unlimited(),
            )
            .unwrap()
        };
        let vm = run(ExecEngine::Auto);
        let tree = run(ExecEngine::TreeWalk);
        assert_eq!(vm.checksum, tree.checksum, "engines must agree bit-for-bit");
        assert_eq!(vm.engine_used, "bytecode");
        assert_eq!(tree.engine_used, "tree-walk");
        assert!(tree.cache_hit, "second request reuses the compile");
    }

    #[test]
    fn auto_upgrades_to_tier2_when_specialized() {
        let sparse = tiny_matrix();
        let run = |engine| {
            serve_request(
                ServiceKernel::Spmv,
                &sparse,
                &PrefetchStrategy::asap(8),
                engine,
                &Budget::unlimited(),
            )
            .unwrap()
        };
        let auto = run(ExecEngine::Auto);
        let vm = run(ExecEngine::Bytecode);
        let tree = run(ExecEngine::TreeWalk);
        assert_eq!(auto.engine_used, "tier2", "ASaP CSR SpMV specializes");
        assert_eq!(vm.engine_used, "bytecode");
        assert_eq!(auto.checksum, vm.checksum, "tier-2 must be bit-identical");
        assert_eq!(auto.checksum, tree.checksum);
    }

    #[test]
    fn budget_trap_is_a_typed_error() {
        let sparse = tiny_matrix();
        let err = serve_request(
            ServiceKernel::Spmv,
            &sparse,
            &PrefetchStrategy::none(),
            ExecEngine::Auto,
            &Budget::unlimited().with_fuel(1),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "budget");
    }

    #[test]
    fn zero_column_spmm_is_rejected() {
        let sparse = tiny_matrix();
        let err = serve_request(
            ServiceKernel::Spmm { cols: 0 },
            &sparse,
            &PrefetchStrategy::none(),
            ExecEngine::Auto,
            &Budget::unlimited(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "binding");
    }
}
