//! # asap-core — ASaP: Automatic Software Prefetching for sparse tensors
//!
//! The paper's primary contribution, built on `asap-sparsifier`'s hook
//! infrastructure:
//!
//! - [`AsapHook`] / [`AsapConfig`] — the three-step prefetch generation of
//!   Figure 5, with semantic buffer bounds from the `crd_buf_sz`
//!   recursion (Section 3.2). Works for innermost loops (SpMV) and outer
//!   loops (SpMM, Figure 9) alike, for any format expressible in the
//!   sparse tensor dialect.
//! - [`ainsworth_jones`] / [`AjConfig`] — a faithful reimplementation of
//!   the prior-art low-level pass: post-hoc pattern matching, loop-bound
//!   clamping. It finds nothing to do for SpMM and dies at segment
//!   boundaries — the two weaknesses the evaluation quantifies.
//! - [`compile`] / [`PrefetchStrategy`] — the three-variant pipeline of
//!   Section 4.3 (baseline / ASaP / A&J), with LICM + DCE cleanup.

pub mod aj;
pub mod asap;
pub mod autotune;
pub mod cache;
pub mod pipeline;
pub mod service;

pub use aj::{ainsworth_jones, AjConfig};
pub use asap::{AsapConfig, AsapHook, InjectionSite};
pub use autotune::{default_candidates, tune_distance, TuneOutcome, TuneSample};
pub use cache::{
    cache_len, cache_stats_full, compile_cached, compile_cached_stat, CacheStats, CACHE_SHARDS,
};
pub use pipeline::{
    compile, compile_with_width, run, run_profiled, run_spmm_f64, run_spmm_f64_budgeted,
    run_spmm_f64_with, run_spmv_f64, run_spmv_f64_budgeted, run_spmv_f64_engine, run_spmv_f64_with,
    run_with_engine, run_with_engine_budgeted, CompileWarning, CompiledKernel, ExecEngine,
    PrefetchStrategy,
};
pub use service::{
    checksum_f64, compile_for, execute_request, fingerprint64, serve_request, service_c, service_x,
    ServiceKernel, ServiceOutcome,
};
