//! A process-wide cache of compiled kernels.
//!
//! Every figure binary used to re-sparsify, re-optimise, re-verify and
//! re-lower the same handful of kernels once per matrix × variant. The
//! kernel depends only on `(spec, strategy, format, index width)` — never
//! on the matrix contents — so the sweep loops can share one compilation
//! per combination. The cache key is the `Debug` rendering of that tuple
//! (all four components derive `Debug` and render every semantically
//! relevant field, including prefetch distances).
//!
//! Thread safety: the map sits behind a `Mutex`; compilation runs outside
//! the lock so concurrent bench-pool workers never serialize on the
//! compiler. Two workers racing on the same key both compile and one
//! result wins — wasted work, never wrong results.
//!
//! Poisoning: a bench worker that panics while holding the lock (the
//! crash-isolated pool keeps the process alive) poisons the mutex. The
//! cache recovers by discarding the whole map — it is a pure memoization
//! layer, so dropping entries costs recompilation, never correctness —
//! and counts the event in [`cache_stats_full`] as `poison_recoveries`.
//!
//! Eviction: the map is capped at [`CACHE_CAPACITY`] entries with FIFO
//! replacement (insertion order). Kernels are a few KB each, so the cap
//! exists to bound a pathological sweep over thousands of distinct
//! prefetch distances, not normal figure runs — those fit comfortably.
//! Evictions are counted and surfaced in `perfstat`/sweep output.
//!
//! Every outcome is mirrored into the `asap-obs` metrics registry
//! (`cache.hits`, `cache.misses`, `cache.evictions`,
//! `cache.poison_recoveries`), and each lookup records a `cache.lookup`
//! span when the recorder is enabled.

use crate::pipeline::{compile_with_width, CompiledKernel, PrefetchStrategy};
use asap_ir::AsapError;
use asap_sparsifier::KernelSpec;
use asap_tensor::{Format, IndexWidth};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Maximum cached kernels before FIFO eviction kicks in.
pub const CACHE_CAPACITY: usize = 128;

#[derive(Default)]
struct CacheState {
    map: HashMap<String, CompiledKernel>,
    /// Keys in insertion order, oldest first (FIFO eviction).
    order: VecDeque<String>,
}

static CACHE: OnceLock<Mutex<CacheState>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
static POISON_RECOVERIES: AtomicU64 = AtomicU64::new(0);

fn map() -> &'static Mutex<CacheState> {
    CACHE.get_or_init(|| Mutex::new(CacheState::default()))
}

/// Lock the cache map, recovering from poisoning by clearing it: the
/// interrupted writer may have left a partially-observed state, and a
/// memoization cache is always safe to empty.
fn lock_map() -> MutexGuard<'static, CacheState> {
    match map().lock() {
        Ok(g) => g,
        Err(poisoned) => {
            let mut g = poisoned.into_inner();
            g.map.clear();
            g.order.clear();
            POISON_RECOVERIES.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("cache.poison_recoveries");
            map().clear_poison();
            g
        }
    }
}

fn key(
    spec: &KernelSpec,
    format: &Format,
    width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> String {
    format!("{spec:?}|{format:?}|{width:?}|{strategy:?}")
}

/// As [`compile_with_width`], memoized on `(spec, format, width,
/// strategy)`. Compilation errors are not cached (they are cheap to
/// reproduce and keep their context fresh).
pub fn compile_cached(
    spec: &KernelSpec,
    format: &Format,
    width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> Result<CompiledKernel, AsapError> {
    let span = asap_obs::span("cache.lookup");
    let k = key(spec, format, width, strategy);
    {
        let m = lock_map();
        if let Some(ck) = m.map.get(&k) {
            HITS.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("cache.hits");
            span.attr("outcome", "hit");
            return Ok(ck.clone());
        }
    }
    span.attr("outcome", "miss");
    let ck = compile_with_width(spec, format, width, strategy)?;
    MISSES.fetch_add(1, Ordering::Relaxed);
    asap_obs::counter_inc("cache.misses");
    let mut m = lock_map();
    if !m.map.contains_key(&k) {
        while m.map.len() >= CACHE_CAPACITY {
            // FIFO: evict the oldest insertion. A racing clear may leave
            // stale order entries; skip any key no longer mapped.
            match m.order.pop_front() {
                Some(old) => {
                    if m.map.remove(&old).is_some() {
                        EVICTIONS.fetch_add(1, Ordering::Relaxed);
                        asap_obs::counter_inc("cache.evictions");
                    }
                }
                None => break,
            }
        }
        m.order.push_back(k.clone());
        m.map.insert(k, ck.clone());
    }
    Ok(ck)
}

/// `(hits, misses)` since process start — the bench harness logs these so
/// sweeps can show how much re-compilation the cache absorbed.
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Cache health counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by FIFO replacement at [`CACHE_CAPACITY`].
    pub evictions: u64,
    /// Times a poisoned cache lock was recovered by discarding the map
    /// (a crash-isolated worker panicked while holding it).
    pub poison_recoveries: u64,
}

/// As [`cache_stats`], including eviction and poison-recovery counts.
pub fn cache_stats_full() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        poison_recoveries: POISON_RECOVERIES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_tensor::ValueKind;

    /// The cache is process-global state; the poison test clears it, so
    /// the tests in this module must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn cache_hits_on_repeat_and_distinguishes_distances() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = KernelSpec::spmv(ValueKind::F64);
        let (_, m0) = cache_stats();
        let a = compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(45),
        )
        .unwrap();
        let (h1, m1) = cache_stats();
        assert!(m1 > m0, "first compile misses");
        let b = compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(45),
        )
        .unwrap();
        let (h2, m2) = cache_stats();
        assert!(h2 > h1, "second compile hits");
        assert_eq!(m2, m1, "second compile does not recompile");
        assert_eq!(a.prefetch_ops, b.prefetch_ops);
        // A different distance is a different kernel: must not alias.
        let c = compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(7),
        )
        .unwrap();
        assert_eq!(c.prefetch_ops, a.prefetch_ops);
        let (_, m3) = cache_stats();
        assert!(m3 > m2, "distinct distance misses");
    }

    #[test]
    fn fifo_eviction_caps_the_map() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = KernelSpec::spmv(ValueKind::F64);
        let before = cache_stats_full();
        // Distinct distances are distinct keys; two more than the
        // capacity forces at least two evictions (the map may already
        // hold entries from other tests).
        for d in 0..(CACHE_CAPACITY + 2) {
            compile_cached(
                &spec,
                &Format::csr(),
                IndexWidth::U32,
                &PrefetchStrategy::asap(d),
            )
            .unwrap();
        }
        let after = cache_stats_full();
        assert!(
            after.evictions >= before.evictions + 2,
            "filling past capacity evicts: {before:?} -> {after:?}"
        );
        let g = lock_map();
        assert!(g.map.len() <= CACHE_CAPACITY);
        assert_eq!(g.order.len(), g.map.len(), "order mirrors the map");
        drop(g);
        // The newest entry survived and is a hit.
        let h0 = cache_stats_full().hits;
        compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(CACHE_CAPACITY + 1),
        )
        .unwrap();
        assert!(cache_stats_full().hits > h0);
    }

    #[test]
    fn errors_are_not_cached() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let mut spec = KernelSpec::spmv(ValueKind::F64);
        spec.output.map = vec![1];
        for _ in 0..2 {
            let err = compile_cached(
                &spec,
                &Format::csr(),
                IndexWidth::U32,
                &PrefetchStrategy::none(),
            )
            .unwrap_err();
            assert_eq!(err.kind(), "spec");
        }
    }

    #[test]
    fn poisoned_lock_recovers_by_clearing_the_map() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = KernelSpec::spmv(ValueKind::F64);
        // Seed an entry so there is something to lose.
        compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(19),
        )
        .unwrap();
        // Poison the cache mutex: panic while holding the guard.
        let poisoner = std::thread::spawn(|| {
            let _guard = map().lock().unwrap();
            panic!("worker dies holding the cache lock");
        });
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        assert!(map().is_poisoned());
        let before = cache_stats_full();
        // The next cached compile recovers: no panic, a fresh (cleared)
        // map, the event counted, and the lock healthy again.
        compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(19),
        )
        .unwrap();
        let after = cache_stats_full();
        assert!(
            after.poison_recoveries > before.poison_recoveries,
            "recovery must be counted: {after:?}"
        );
        assert!(after.misses > before.misses, "the cleared entry recompiles");
        assert!(!map().is_poisoned(), "the lock is healed, not re-cleared");
        // And a repeat is a plain hit on the recovered map.
        let h0 = cache_stats_full().hits;
        compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(19),
        )
        .unwrap();
        assert!(cache_stats_full().hits > h0);
    }
}
