//! A process-wide, lock-striped cache of compiled kernels.
//!
//! Every figure binary used to re-sparsify, re-optimise, re-verify and
//! re-lower the same handful of kernels once per matrix × variant, and
//! the serving daemon compiles on the request path. The kernel depends
//! only on `(spec, strategy, format, index width)` — never on the matrix
//! contents — so sweep loops and concurrent requests can share one
//! compilation per combination. The cache key is the `Debug` rendering
//! of that tuple (all four components derive `Debug` and render every
//! semantically relevant field, including prefetch distances).
//!
//! Sharding: the map is striped across [`CACHE_SHARDS`] independent
//! mutex-guarded shards, selected by an FNV-1a hash of the key, so a
//! serving worker pool hammering a handful of hot kernels never
//! serializes every lookup on one lock. Compilation runs outside any
//! lock; two workers racing on the same key both compile and one result
//! wins — wasted work, never wrong results. (The serving layer layers
//! single-flight coalescing on top; see `asap-serve::batcher`.)
//!
//! Stats: each shard keeps its own hit/miss/eviction/poison counters;
//! [`cache_stats_full`] aggregates them into process totals.
//!
//! Poisoning: a worker that panics while holding a shard lock (the
//! crash-isolated pool keeps the process alive) poisons only that
//! shard. The shard recovers by discarding its own map — it is a pure
//! memoization layer, so dropping entries costs recompilation, never
//! correctness — and counts the event as a `poison_recovery`. The other
//! shards keep their entries.
//!
//! Eviction: each shard is capped at `CACHE_CAPACITY / CACHE_SHARDS`
//! entries with FIFO replacement (insertion order), bounding the whole
//! cache at [`CACHE_CAPACITY`]. Kernels are a few KB each, so the cap
//! exists to bound a pathological sweep over thousands of distinct
//! prefetch distances, not normal runs — those fit comfortably.
//!
//! Every outcome is mirrored into the `asap-obs` metrics registry
//! (`cache.hits`, `cache.misses`, `cache.evictions`,
//! `cache.poison_recoveries`), and each lookup records a `cache.lookup`
//! span when the recorder is enabled.

use crate::pipeline::{compile_with_width, CompiledKernel, PrefetchStrategy};
use asap_ir::AsapError;
use asap_sparsifier::KernelSpec;
use asap_tensor::{Format, IndexWidth};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Maximum cached kernels across all shards before FIFO eviction.
pub const CACHE_CAPACITY: usize = 128;

/// Number of lock stripes. A power of two so the hash maps to a shard
/// with a mask; 8 stripes keep lock contention negligible even with a
/// serving pool of a few dozen workers.
pub const CACHE_SHARDS: usize = 8;

const SHARD_CAPACITY: usize = CACHE_CAPACITY / CACHE_SHARDS;

#[derive(Default)]
struct ShardState {
    map: HashMap<String, CompiledKernel>,
    /// Keys in insertion order, oldest first (FIFO eviction).
    order: VecDeque<String>,
}

#[derive(Default)]
struct Shard {
    /// This shard's index, for the per-shard occupancy gauge name.
    id: usize,
    state: Mutex<ShardState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    poison_recoveries: AtomicU64,
    /// Approximate resident bytes of the entries currently in this
    /// shard (Σ [`CompiledKernel::approx_bytes`] over the map). Kept as
    /// a counter adjusted on insert/evict/poison-clear so occupancy is
    /// readable without taking the shard lock.
    bytes: AtomicU64,
    /// Hits/misses split by whether the kernel carries a tier-2 native
    /// specialization — the serving dashboards want to know how much of
    /// the hot set runs native versus on the VM.
    tier2_hits: AtomicU64,
    tier2_misses: AtomicU64,
}

/// `asap-obs` gauge names for per-shard occupancy (`&'static str` is
/// required by the registry, so the names are spelled out).
const SHARD_BYTES_GAUGES: [&str; CACHE_SHARDS] = [
    "cache.shard0.bytes",
    "cache.shard1.bytes",
    "cache.shard2.bytes",
    "cache.shard3.bytes",
    "cache.shard4.bytes",
    "cache.shard5.bytes",
    "cache.shard6.bytes",
    "cache.shard7.bytes",
];

static CACHE: OnceLock<Vec<Shard>> = OnceLock::new();

fn shards() -> &'static [Shard] {
    CACHE.get_or_init(|| {
        (0..CACHE_SHARDS)
            .map(|i| Shard {
                id: i,
                ..Shard::default()
            })
            .collect()
    })
}

/// FNV-1a over the key bytes: cheap, deterministic, and well-mixed for
/// the short `Debug`-rendered tuples used as keys.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn shard_for(key: &str) -> &'static Shard {
    &shards()[(fnv1a(key) as usize) & (CACHE_SHARDS - 1)]
}

/// Lock one shard's map, recovering from poisoning by clearing it: the
/// interrupted writer may have left a partially-observed state, and a
/// memoization cache is always safe to empty. Only the poisoned shard
/// loses its entries.
fn lock_shard(shard: &Shard) -> MutexGuard<'_, ShardState> {
    match shard.state.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            let mut g = poisoned.into_inner();
            g.map.clear();
            g.order.clear();
            let dropped = shard.bytes.swap(0, Ordering::Relaxed);
            asap_obs::gauge_sub("cache.bytes", dropped as i64);
            asap_obs::gauge_set(SHARD_BYTES_GAUGES[shard.id], 0);
            shard.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("cache.poison_recoveries");
            shard.state.clear_poison();
            g
        }
    }
}

fn key(
    spec: &KernelSpec,
    format: &Format,
    width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> String {
    format!("{spec:?}|{format:?}|{width:?}|{strategy:?}")
}

/// As [`compile_with_width`], memoized on `(spec, format, width,
/// strategy)`. Compilation errors are not cached (they are cheap to
/// reproduce and keep their context fresh).
pub fn compile_cached(
    spec: &KernelSpec,
    format: &Format,
    width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> Result<CompiledKernel, AsapError> {
    compile_cached_stat(spec, format, width, strategy).map(|(ck, _)| ck)
}

/// As [`compile_cached`], additionally reporting whether the kernel was
/// served from the cache (`true`) or compiled by this call (`false`).
/// The serving layer surfaces the flag in responses so clients — and the
/// coalescing tests — can see exactly which request paid the compile.
pub fn compile_cached_stat(
    spec: &KernelSpec,
    format: &Format,
    width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> Result<(CompiledKernel, bool), AsapError> {
    let span = asap_obs::span("cache.lookup");
    let k = key(spec, format, width, strategy);
    let shard = shard_for(&k);
    {
        let m = lock_shard(shard);
        if let Some(ck) = m.map.get(&k) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            asap_obs::counter_inc("cache.hits");
            if ck.tier2.is_some() {
                shard.tier2_hits.fetch_add(1, Ordering::Relaxed);
                asap_obs::counter_inc("cache.tier2_hits");
            }
            span.attr("outcome", "hit");
            return Ok((ck.clone(), true));
        }
    }
    span.attr("outcome", "miss");
    let ck = compile_with_width(spec, format, width, strategy)?;
    shard.misses.fetch_add(1, Ordering::Relaxed);
    asap_obs::counter_inc("cache.misses");
    if ck.tier2.is_some() {
        shard.tier2_misses.fetch_add(1, Ordering::Relaxed);
        asap_obs::counter_inc("cache.tier2_misses");
    }
    let mut m = lock_shard(shard);
    if !m.map.contains_key(&k) {
        while m.map.len() >= SHARD_CAPACITY {
            // FIFO: evict the oldest insertion. A racing clear may leave
            // stale order entries; skip any key no longer mapped.
            match m.order.pop_front() {
                Some(old) => {
                    if let Some(evicted) = m.map.remove(&old) {
                        shard.evictions.fetch_add(1, Ordering::Relaxed);
                        asap_obs::counter_inc("cache.evictions");
                        let freed = evicted.approx_bytes();
                        shard.bytes.fetch_sub(freed, Ordering::Relaxed);
                        asap_obs::gauge_sub("cache.bytes", freed as i64);
                        asap_obs::gauge_sub(SHARD_BYTES_GAUGES[shard.id], freed as i64);
                    }
                }
                None => break,
            }
        }
        let added = ck.approx_bytes();
        shard.bytes.fetch_add(added, Ordering::Relaxed);
        asap_obs::gauge_add("cache.bytes", added as i64);
        asap_obs::gauge_add(SHARD_BYTES_GAUGES[shard.id], added as i64);
        m.order.push_back(k.clone());
        m.map.insert(k, ck.clone());
    }
    Ok((ck, false))
}

/// Cache health counters since process start, aggregated across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by FIFO replacement at the per-shard cap.
    pub evictions: u64,
    /// Times a poisoned shard lock was recovered by discarding that
    /// shard's map (a crash-isolated worker panicked while holding it).
    pub poison_recoveries: u64,
    /// Subset of `hits`/`misses` whose kernel carries a tier-2 native
    /// specialization (lookups of VM-only kernels are the difference).
    pub tier2_hits: u64,
    pub tier2_misses: u64,
    /// Approximate resident bytes per shard (Σ
    /// [`CompiledKernel::approx_bytes`](crate::pipeline::CompiledKernel::approx_bytes)
    /// over each shard's live entries).
    pub shard_bytes: [u64; CACHE_SHARDS],
    /// Σ `shard_bytes`: total approximate cache occupancy.
    pub bytes: u64,
}

/// Aggregate the per-shard counters into process-wide totals.
pub fn cache_stats_full() -> CacheStats {
    let mut s = CacheStats {
        hits: 0,
        misses: 0,
        evictions: 0,
        poison_recoveries: 0,
        tier2_hits: 0,
        tier2_misses: 0,
        shard_bytes: [0; CACHE_SHARDS],
        bytes: 0,
    };
    for (i, shard) in shards().iter().enumerate() {
        s.hits += shard.hits.load(Ordering::Relaxed);
        s.misses += shard.misses.load(Ordering::Relaxed);
        s.evictions += shard.evictions.load(Ordering::Relaxed);
        s.poison_recoveries += shard.poison_recoveries.load(Ordering::Relaxed);
        s.tier2_hits += shard.tier2_hits.load(Ordering::Relaxed);
        s.tier2_misses += shard.tier2_misses.load(Ordering::Relaxed);
        s.shard_bytes[i] = shard.bytes.load(Ordering::Relaxed);
        s.bytes += s.shard_bytes[i];
    }
    s
}

/// Total entries currently cached, across all shards.
pub fn cache_len() -> usize {
    shards().iter().map(|s| lock_shard(s).map.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_tensor::ValueKind;

    /// The cache is process-global state; the poison test clears a
    /// shard, so the tests in this module must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn cache_hits_on_repeat_and_distinguishes_distances() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = KernelSpec::spmv(ValueKind::F64);
        let m0 = cache_stats_full().misses;
        let (a, _) = compile_cached_stat(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(45),
        )
        .unwrap();
        let s1 = cache_stats_full();
        assert!(s1.misses > m0, "first compile misses");
        let (b, hit) = compile_cached_stat(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(45),
        )
        .unwrap();
        let s2 = cache_stats_full();
        assert!(hit, "second compile reports a hit");
        assert!(s2.hits > s1.hits, "second compile hits");
        assert_eq!(s2.misses, s1.misses, "second compile does not recompile");
        assert_eq!(a.prefetch_ops, b.prefetch_ops);
        // A different distance is a different kernel: must not alias.
        let (c, hit) = compile_cached_stat(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(7),
        )
        .unwrap();
        assert!(!hit, "distinct distance is a fresh compile");
        assert_eq!(c.prefetch_ops, a.prefetch_ops);
        assert!(
            cache_stats_full().misses > s2.misses,
            "distinct distance misses"
        );
    }

    #[test]
    fn keys_spread_across_shards() {
        // The FNV stripe must actually distribute: 64 realistic keys
        // (distinct distances) should touch well over half the shards.
        let spec = KernelSpec::spmv(ValueKind::F64);
        let mut used = std::collections::HashSet::new();
        for d in 0..64 {
            let k = key(
                &spec,
                &Format::csr(),
                IndexWidth::U32,
                &PrefetchStrategy::asap(d),
            );
            used.insert((fnv1a(&k) as usize) & (CACHE_SHARDS - 1));
        }
        assert!(
            used.len() > CACHE_SHARDS / 2,
            "only {} shards used",
            used.len()
        );
    }

    #[test]
    fn fifo_eviction_caps_the_total() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = KernelSpec::spmv(ValueKind::F64);
        let before = cache_stats_full();
        // Distinct distances are distinct keys; two more than the total
        // capacity forces at least two evictions (every key past a
        // shard's cap evicts, and Σ per-shard overflow ≥ total − cap).
        for d in 0..(CACHE_CAPACITY + 2) {
            compile_cached(
                &spec,
                &Format::csr(),
                IndexWidth::U32,
                &PrefetchStrategy::asap(d),
            )
            .unwrap();
        }
        let after = cache_stats_full();
        assert!(
            after.evictions >= before.evictions + 2,
            "filling past capacity evicts: {before:?} -> {after:?}"
        );
        assert!(cache_len() <= CACHE_CAPACITY, "total stays bounded");
        for shard in shards() {
            let g = lock_shard(shard);
            assert!(g.map.len() <= SHARD_CAPACITY);
            assert_eq!(g.order.len(), g.map.len(), "order mirrors the map");
        }
    }

    #[test]
    fn occupancy_and_tier_split_are_tracked() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = KernelSpec::spmv(ValueKind::F64);
        let before = cache_stats_full();
        // A fresh ASaP distance: a tier-2-specialized kernel.
        let (ck, hit) = compile_cached_stat(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(97),
        )
        .unwrap();
        assert!(ck.tier2.is_some());
        let mid = cache_stats_full();
        if !hit {
            assert!(
                mid.tier2_misses > before.tier2_misses,
                "first specialized compile counts as a tier-2 miss"
            );
            assert!(
                mid.bytes >= before.bytes + ck.approx_bytes(),
                "occupancy grows by at least the inserted kernel: {} -> {}",
                before.bytes,
                mid.bytes
            );
        }
        // Repeat: a tier-2 hit, no occupancy change.
        let (_, hit) = compile_cached_stat(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(97),
        )
        .unwrap();
        assert!(hit);
        let after = cache_stats_full();
        assert!(after.tier2_hits > mid.tier2_hits);
        assert_eq!(after.bytes, mid.bytes, "a hit does not change occupancy");
        assert_eq!(after.bytes, after.shard_bytes.iter().sum::<u64>());
        // A baseline kernel has no tier-2 plan: its lookups move the
        // aggregate counters but not the tier-2 split.
        let t2 = (after.tier2_hits, after.tier2_misses);
        let (base, _) = compile_cached_stat(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::none(),
        )
        .unwrap();
        assert!(base.tier2.is_none());
        let fin = cache_stats_full();
        assert_eq!((fin.tier2_hits, fin.tier2_misses), t2);
    }

    #[test]
    fn errors_are_not_cached() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let mut spec = KernelSpec::spmv(ValueKind::F64);
        spec.output.map = vec![1];
        for _ in 0..2 {
            let err = compile_cached(
                &spec,
                &Format::csr(),
                IndexWidth::U32,
                &PrefetchStrategy::none(),
            )
            .unwrap_err();
            assert_eq!(err.kind(), "spec");
        }
    }

    #[test]
    fn poisoned_shard_recovers_by_clearing_only_itself() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let spec = KernelSpec::spmv(ValueKind::F64);
        // Seed an entry so there is something to lose, and find its shard.
        compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(19),
        )
        .unwrap();
        let k = key(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(19),
        );
        let shard = shard_for(&k);
        // Poison exactly that shard: panic while holding its guard.
        let poisoner = std::thread::spawn(move || {
            let _guard = shard.state.lock().unwrap();
            panic!("worker dies holding a shard lock");
        });
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        assert!(shard.state.is_poisoned());
        let before = cache_stats_full();
        // The next cached compile recovers: no panic, a fresh (cleared)
        // shard, the event counted, and the lock healthy again.
        compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(19),
        )
        .unwrap();
        let after = cache_stats_full();
        assert!(
            after.poison_recoveries > before.poison_recoveries,
            "recovery must be counted: {after:?}"
        );
        assert!(after.misses > before.misses, "the cleared entry recompiles");
        assert!(
            !shard.state.is_poisoned(),
            "the lock is healed, not re-cleared"
        );
        // And a repeat is a plain hit on the recovered shard.
        let h0 = cache_stats_full().hits;
        let (_, hit) = compile_cached_stat(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(19),
        )
        .unwrap();
        assert!(hit);
        assert!(cache_stats_full().hits > h0);
    }
}
