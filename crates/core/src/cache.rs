//! A process-wide cache of compiled kernels.
//!
//! Every figure binary used to re-sparsify, re-optimise, re-verify and
//! re-lower the same handful of kernels once per matrix × variant. The
//! kernel depends only on `(spec, strategy, format, index width)` — never
//! on the matrix contents — so the sweep loops can share one compilation
//! per combination. The cache key is the `Debug` rendering of that tuple
//! (all four components derive `Debug` and render every semantically
//! relevant field, including prefetch distances).
//!
//! Thread safety: the map sits behind a `Mutex`; compilation runs outside
//! the lock so concurrent bench-pool workers never serialize on the
//! compiler. Two workers racing on the same key both compile and one
//! result wins — wasted work, never wrong results.

use crate::pipeline::{compile_with_width, CompiledKernel, PrefetchStrategy};
use asap_ir::AsapError;
use asap_sparsifier::KernelSpec;
use asap_tensor::{Format, IndexWidth};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static CACHE: OnceLock<Mutex<HashMap<String, CompiledKernel>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn map() -> &'static Mutex<HashMap<String, CompiledKernel>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn key(
    spec: &KernelSpec,
    format: &Format,
    width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> String {
    format!("{spec:?}|{format:?}|{width:?}|{strategy:?}")
}

/// As [`compile_with_width`], memoized on `(spec, format, width,
/// strategy)`. Compilation errors are not cached (they are cheap to
/// reproduce and keep their context fresh).
pub fn compile_cached(
    spec: &KernelSpec,
    format: &Format,
    width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> Result<CompiledKernel, AsapError> {
    let k = key(spec, format, width, strategy);
    {
        let m = map().lock().unwrap_or_else(|p| p.into_inner());
        if let Some(ck) = m.get(&k) {
            HITS.fetch_add(1, Ordering::Relaxed);
            return Ok(ck.clone());
        }
    }
    let ck = compile_with_width(spec, format, width, strategy)?;
    MISSES.fetch_add(1, Ordering::Relaxed);
    map()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(k, ck.clone());
    Ok(ck)
}

/// `(hits, misses)` since process start — the bench harness logs these so
/// sweeps can show how much re-compilation the cache absorbed.
pub fn cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_tensor::ValueKind;

    #[test]
    fn cache_hits_on_repeat_and_distinguishes_distances() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let (_, m0) = cache_stats();
        let a = compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(45),
        )
        .unwrap();
        let (h1, m1) = cache_stats();
        assert!(m1 > m0, "first compile misses");
        let b = compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(45),
        )
        .unwrap();
        let (h2, m2) = cache_stats();
        assert!(h2 > h1, "second compile hits");
        assert_eq!(m2, m1, "second compile does not recompile");
        assert_eq!(a.prefetch_ops, b.prefetch_ops);
        // A different distance is a different kernel: must not alias.
        let c = compile_cached(
            &spec,
            &Format::csr(),
            IndexWidth::U32,
            &PrefetchStrategy::asap(7),
        )
        .unwrap();
        assert_eq!(c.prefetch_ops, a.prefetch_ops);
        let (_, m3) = cache_stats();
        assert!(m3 > m2, "distinct distance misses");
    }

    #[test]
    fn errors_are_not_cached() {
        let mut spec = KernelSpec::spmv(ValueKind::F64);
        spec.output.map = vec![1];
        for _ in 0..2 {
            let err = compile_cached(
                &spec,
                &Format::csr(),
                IndexWidth::U32,
                &PrefetchStrategy::none(),
            )
            .unwrap_err();
            assert_eq!(err.kind(), "spec");
        }
    }
}
