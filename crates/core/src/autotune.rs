//! Profile-guided prefetch-distance selection.
//!
//! The paper fixes `distance = 45` and names profile-guided tuning
//! (APT-GET, RPG²) as an orthogonal direction it "could benefit from"
//! (Sections 3.2.3 and 6). This module implements that extension: compile
//! the kernel at several candidate distances, score each with a
//! caller-supplied evaluator (typically a simulator run over a sample of
//! the workload), and return the best.
//!
//! The evaluator is a closure, so this crate stays independent of any
//! particular timing backend.

use crate::asap::AsapConfig;
use crate::pipeline::{compile_with_width, CompiledKernel, PrefetchStrategy};
use asap_ir::AsapError;
use asap_sparsifier::KernelSpec;
use asap_tensor::{Format, IndexWidth};

/// One sampled point of the tuning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneSample {
    pub distance: usize,
    /// Evaluator score; lower is better (e.g. simulated cycles).
    pub cost: u64,
}

/// Result of a tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    pub best: CompiledKernel,
    pub best_distance: usize,
    pub samples: Vec<TuneSample>,
}

/// The default candidate ladder: powers of two around the paper's 45.
pub fn default_candidates() -> Vec<usize> {
    vec![4, 8, 16, 32, 45, 64, 96, 128]
}

/// Sweep `candidates`, scoring each compiled kernel with `evaluate`
/// (lower cost wins; ties go to the smaller distance, which pollutes
/// less). Returns an error if `candidates` is empty or compilation fails.
pub fn tune_distance(
    spec: &KernelSpec,
    format: &Format,
    index_width: IndexWidth,
    candidates: &[usize],
    mut evaluate: impl FnMut(&CompiledKernel) -> u64,
) -> Result<TuneOutcome, AsapError> {
    if candidates.is_empty() {
        return Err(AsapError::spec("no candidate distances"));
    }
    let mut samples = Vec::with_capacity(candidates.len());
    let mut best: Option<(u64, usize, CompiledKernel)> = None;
    for &d in candidates {
        let ck = compile_with_width(
            spec,
            format,
            index_width,
            &PrefetchStrategy::Asap(AsapConfig::with_distance(d)),
        )?;
        let cost = evaluate(&ck);
        samples.push(TuneSample { distance: d, cost });
        let better = match &best {
            None => true,
            Some((c, bd, _)) => cost < *c || (cost == *c && d < *bd),
        };
        if better {
            best = Some((cost, d, ck));
        }
    }
    // invariant: `candidates` is non-empty (checked above), so the loop ran.
    let (_, best_distance, best) = best.expect("candidates is non-empty");
    Ok(TuneOutcome {
        best,
        best_distance,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_tensor::ValueKind;

    fn spec() -> KernelSpec {
        KernelSpec::spmv(ValueKind::F64)
    }

    #[test]
    fn picks_the_minimum_cost_distance() {
        // Synthetic cost curve with a minimum at 32.
        let out = tune_distance(
            &spec(),
            &Format::csr(),
            IndexWidth::U32,
            &[8, 16, 32, 64],
            |ck| {
                let d = match ck.strategy {
                    PrefetchStrategy::Asap(c) => c.distance as i64,
                    _ => unreachable!(),
                };
                ((d - 32).abs() + 100) as u64
            },
        )
        .unwrap();
        assert_eq!(out.best_distance, 32);
        assert_eq!(out.samples.len(), 4);
        assert!(out.samples.iter().all(|s| s.cost >= 100));
    }

    #[test]
    fn ties_prefer_smaller_distance() {
        let out = tune_distance(
            &spec(),
            &Format::csr(),
            IndexWidth::U32,
            &[64, 8, 32],
            |_| 7,
        )
        .unwrap();
        assert_eq!(out.best_distance, 8);
    }

    #[test]
    fn rejects_empty_candidates() {
        let err = tune_distance(&spec(), &Format::csr(), IndexWidth::U32, &[], |_| 0).unwrap_err();
        assert!(err.to_string().contains("no candidate"));
    }

    #[test]
    fn tuned_kernel_is_runnable_end_to_end() {
        use asap_tensor::{CooTensor, SparseTensor, Values};
        let coo = CooTensor::new(
            vec![4, 4],
            vec![0, 1, 1, 2, 2, 0, 3, 3],
            Values::F64(vec![1.0, 2.0, 3.0, 4.0]),
        );
        let b = SparseTensor::from_coo(&coo, Format::csr());
        // Evaluate by real (functional) instruction count — a degenerate
        // but well-defined cost.
        let out = tune_distance(
            &spec(),
            &Format::csr(),
            IndexWidth::U32,
            &default_candidates(),
            |ck| {
                let mut m = asap_ir::CountingModel::default();
                let _ = crate::pipeline::run_spmv_f64_with(ck, &b, &[1.0; 4], &mut m);
                m.instructions
            },
        )
        .unwrap();
        let y = crate::pipeline::run_spmv_f64(&out.best, &b, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
