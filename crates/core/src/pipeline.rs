//! The end-to-end compilation pipeline: sparsify (with or without a
//! prefetch strategy), then clean up (LICM + DCE), producing a
//! [`CompiledKernel`] ready to run — the counterpart of the paper's three
//! implementation variants (Section 4.3).
//!
//! # Graceful degradation
//!
//! Prefetching is a pure performance optimisation: the paper's Section
//! 3.2.2 argument is that injected prefetches never change semantics. The
//! pipeline exploits that here: if prefetch injection or post-pass
//! verification fails for a (format, width, strategy) triple, compilation
//! *falls back to the baseline kernel* instead of erroring out, and
//! records a structured [`CompileWarning`] on the [`CompiledKernel`] so
//! callers (the bench harness, reports) can surface the degradation. Only
//! a baseline failure — the kernel itself cannot be generated — is a hard
//! error.

use crate::aj::{ainsworth_jones, AjConfig};
use crate::asap::{AsapConfig, AsapHook};
use asap_ir::{
    cse, dce, execute_budgeted, execute_budgeted_profiled, fold, interpret_budgeted, licm, lower,
    AsapError, BinOp, Budget, ExecProfile, MemoryModel, Op, OpKind, Program, Tier2Plan, Type,
};
use asap_sparsifier::{bind, read_back, sparsify, KernelSpec, SparsifiedKernel};
use asap_tensor::{DenseTensor, Format, IndexWidth, SparseTensor, ValueKind};

/// Which software-prefetching variant to compile (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchStrategy {
    /// Variant 1: plain sparsification, no software prefetching.
    Baseline,
    /// Variant 2: ASaP — semantic bounds, injected during sparsification.
    Asap(AsapConfig),
    /// Variant 3: the Ainsworth & Jones low-level pass, applied post-hoc.
    AinsworthJones(AjConfig),
    /// Deliberately corrupts the IR after injection so post-pass
    /// verification fails. Exists to exercise the graceful-degradation
    /// fallback path end to end (fault-injection testing); never useful
    /// for real compilation.
    FaultInjection,
}

impl PrefetchStrategy {
    /// ASaP at the paper's configuration (distance 45, locality 2).
    pub fn asap(distance: usize) -> PrefetchStrategy {
        PrefetchStrategy::Asap(AsapConfig::with_distance(distance))
    }

    /// Ainsworth & Jones at the same distance.
    pub fn aj(distance: usize) -> PrefetchStrategy {
        PrefetchStrategy::AinsworthJones(AjConfig::with_distance(distance))
    }

    pub fn none() -> PrefetchStrategy {
        PrefetchStrategy::Baseline
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PrefetchStrategy::Baseline => "baseline",
            PrefetchStrategy::Asap(_) => "asap",
            PrefetchStrategy::AinsworthJones(_) => "ainsworth-jones",
            PrefetchStrategy::FaultInjection => "fault-injection",
        }
    }
}

/// A non-fatal compilation event: the requested strategy could not be
/// applied and the pipeline degraded to the baseline kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileWarning {
    /// Label of the strategy that failed.
    pub strategy: &'static str,
    /// Stage that failed ([`AsapError::kind`]): "codegen", "verify", ...
    pub kind: &'static str,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for CompileWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "strategy '{}' failed at {} stage, fell back to baseline: {}",
            self.strategy, self.kind, self.message
        )
    }
}

/// A compiled kernel plus compilation metadata.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub kernel: SparsifiedKernel,
    /// The strategy that actually produced this kernel. After a fallback
    /// this is [`PrefetchStrategy::Baseline`], not the requested one —
    /// check `warnings` for what was requested.
    pub strategy: PrefetchStrategy,
    /// Number of `memref.prefetch` ops in the final IR.
    pub prefetch_ops: usize,
    /// Ops hoisted by LICM (the bound chain, for ASaP).
    pub hoisted_ops: usize,
    /// Non-fatal degradations recorded during compilation.
    pub warnings: Vec<CompileWarning>,
    /// The kernel lowered to register bytecode (the fast execution
    /// engine). `None` only if lowering declined the function shape, in
    /// which case execution falls back to the tree-walker — results and
    /// memory-event streams are identical either way.
    pub program: Option<Program>,
    /// The tier-2 native specialization, when the lowered program
    /// matches a recognized kernel skeleton (ASaP CSR SpMV/SpMM). `None`
    /// means "shape not recognized — run the VM"; it is never an error.
    /// Tier-2 runs are bit- and error-exact with the VM but report no
    /// memory events (see `asap_ir::tier2` for the trace exemption).
    pub tier2: Option<Tier2Plan>,
}

impl CompiledKernel {
    /// True if the requested strategy was applied without degradation.
    pub fn is_degraded(&self) -> bool {
        !self.warnings.is_empty()
    }

    /// Rough resident footprint of this kernel, for cache occupancy
    /// accounting: the struct itself plus the dominant heap blocks (the
    /// bytecode instruction vector and its side tables). Deliberately an
    /// estimate — the cache reports occupancy, it does not enforce a
    /// byte ceiling, so systematic undercounting of small allocations
    /// (strings, warnings) is acceptable.
    pub fn approx_bytes(&self) -> u64 {
        let mut b = std::mem::size_of::<CompiledKernel>();
        if let Some(p) = &self.program {
            b += std::mem::size_of_val(p.instrs.as_slice());
            b += std::mem::size_of_val(p.param_slots.as_slice());
            b += std::mem::size_of_val(p.mem_args.as_slice());
            b += p.name.len();
        }
        b += self.warnings.len() * std::mem::size_of::<CompileWarning>();
        b as u64
    }
}

/// Compile exactly the requested strategy — no fallback.
fn compile_exact(
    spec: &KernelSpec,
    format: &Format,
    index_width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> Result<CompiledKernel, AsapError> {
    let span = asap_obs::span_with("compile", || {
        vec![
            ("kernel", spec.name.clone()),
            ("strategy", strategy.label().to_string()),
            ("format", format.name().to_string()),
        ]
    });
    let mut kernel = {
        let _s = asap_obs::span("compile.sparsify");
        match strategy {
            PrefetchStrategy::Asap(cfg) => {
                let mut hook = AsapHook::new(*cfg);
                sparsify(spec, format, index_width, Some(&mut hook))?
            }
            _ => sparsify(spec, format, index_width, None)?,
        }
    };
    let hoisted = {
        let _s = asap_obs::span("compile.transforms");
        if let PrefetchStrategy::AinsworthJones(cfg) = strategy {
            ainsworth_jones(&mut kernel.func, cfg);
        }
        let hoisted = licm(&mut kernel.func);
        fold(&mut kernel.func);
        cse(&mut kernel.func);
        dce(&mut kernel.func);
        hoisted
    };
    if matches!(strategy, PrefetchStrategy::FaultInjection) {
        poison(&mut kernel.func);
    }
    {
        let _s = asap_obs::span("compile.verify");
        asap_ir::verify(&kernel.func)?;
    }
    // Lower the verified kernel to bytecode. Sparsifier output always
    // lowers; a decline (e.g. a memref that is not a parameter) simply
    // leaves the tree-walker as the execution engine.
    let program = {
        let _s = asap_obs::span("compile.lower");
        lower(&kernel.func).ok()
    };
    // Stamp the tier-2 native specialization when the bytecode matches
    // a recognized kernel skeleton. Purely structural and infallible: a
    // non-match leaves the VM as the fast engine.
    let tier2 = program.as_ref().and_then(Tier2Plan::from_program);
    let prefetch_ops = kernel.func.prefetch_count();
    span.attr("prefetch_ops", prefetch_ops);
    Ok(CompiledKernel {
        prefetch_ops,
        kernel,
        strategy: *strategy,
        hoisted_ops: hoisted,
        warnings: Vec::new(),
        program,
        tier2,
    })
}

/// Corrupt a function so verification fails: prepend an op whose operand
/// value is never defined. Used by [`PrefetchStrategy::FaultInjection`].
fn poison(func: &mut asap_ir::Function) {
    let undefined = func.fresh_value(Type::Index);
    let result = func.fresh_value(Type::Index);
    let id = func.fresh_op_id();
    func.body.ops.insert(
        0,
        Op {
            id,
            kind: OpKind::Binary {
                op: BinOp::AddI,
                lhs: undefined,
                rhs: undefined,
            },
            results: vec![result],
        },
    );
}

/// Compile a kernel for a sparse operand stored in `format` with the given
/// index width, applying the chosen prefetch strategy and then LICM + DCE
/// (mirroring the shared `-O3` backend of the paper's setup).
///
/// If the strategy fails (injection, transforms, or verification) the
/// pipeline degrades to [`PrefetchStrategy::Baseline`] and records a
/// [`CompileWarning`]; the error is returned only if the baseline itself
/// cannot be compiled (e.g. an invalid spec or unsupported loop order).
pub fn compile_with_width(
    spec: &KernelSpec,
    format: &Format,
    index_width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> Result<CompiledKernel, AsapError> {
    match compile_exact(spec, format, index_width, strategy) {
        Ok(ck) => Ok(ck),
        Err(_) if matches!(strategy, PrefetchStrategy::Baseline) => {
            // No fallback available below baseline: propagate.
            compile_exact(spec, format, index_width, strategy)
        }
        Err(e) => {
            let mut ck = compile_exact(spec, format, index_width, &PrefetchStrategy::Baseline)?;
            ck.warnings.push(CompileWarning {
                strategy: strategy.label(),
                kind: e.kind(),
                message: e.to_string(),
            });
            Ok(ck)
        }
    }
}

/// As [`compile_with_width`] with the default narrow (32-bit) index width,
/// which every tensor whose nnz and dims fit in `u32` uses.
pub fn compile(
    spec: &KernelSpec,
    format: &Format,
    strategy: &PrefetchStrategy,
) -> Result<CompiledKernel, AsapError> {
    compile_with_width(spec, format, IndexWidth::U32, strategy)
}

/// Which interpreter executes a compiled kernel. Tree-walk and bytecode
/// are observationally identical (same results, same memory-event
/// stream); tier-2 is bit- and error-exact but reports no memory events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEngine {
    /// Bytecode when the kernel has a lowered [`Program`], else tree-walk.
    /// Never tier-2: `Auto` callers may attach a memory model, and the
    /// event stream must stay faithful. The serving layer (which runs
    /// model-free) upgrades `Auto` to tier-2 itself.
    Auto,
    /// The original recursive tree-walking interpreter.
    TreeWalk,
    /// The register-bytecode VM (errors if the kernel has no program).
    Bytecode,
    /// The native runtime-specialized kernel (errors if the kernel has
    /// no tier-2 plan). The memory model is bypassed — see
    /// `asap_ir::tier2` for the trace-exemption rationale.
    Tier2,
}

/// Run a compiled kernel (generic operands) under the given memory model.
pub fn run<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    sparse: &SparseTensor,
    dense: &[&DenseTensor],
    out: &mut DenseTensor,
    model: &mut M,
) -> Result<(), AsapError> {
    run_with_engine(ck, sparse, dense, out, model, ExecEngine::Auto)
}

/// As [`run`], with an explicit engine choice (the A/B instrument used by
/// `perfstat` and the differential suites).
pub fn run_with_engine<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    sparse: &SparseTensor,
    dense: &[&DenseTensor],
    out: &mut DenseTensor,
    model: &mut M,
    engine: ExecEngine,
) -> Result<(), AsapError> {
    run_with_engine_budgeted(ck, sparse, dense, out, model, engine, &Budget::unlimited())
}

/// As [`run_with_engine`], governed by a resource [`Budget`]: the bytes
/// ceiling is checked eagerly against the bound operand buffers, and the
/// fuel/deadline/cancellation limits are threaded into whichever engine
/// runs. Exceeding any limit yields [`AsapError::BudgetExceeded`] — never
/// a hang, never a panic — at an observationally equivalent point in both
/// engines.
#[allow(clippy::too_many_arguments)]
pub fn run_with_engine_budgeted<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    sparse: &SparseTensor,
    dense: &[&DenseTensor],
    out: &mut DenseTensor,
    model: &mut M,
    engine: ExecEngine,
    budget: &Budget,
) -> Result<(), AsapError> {
    let mut bound = bind(&ck.kernel, sparse, dense, out)?;
    budget.check_bytes(bound.bufs.bytes_allocated())?;
    enum Chosen<'a> {
        Tree,
        Byte(&'a Program),
        Native(&'a Tier2Plan),
    }
    let chosen = match engine {
        ExecEngine::TreeWalk => Chosen::Tree,
        ExecEngine::Auto => ck.program.as_ref().map_or(Chosen::Tree, Chosen::Byte),
        ExecEngine::Bytecode => Chosen::Byte(ck.program.as_ref().ok_or_else(|| {
            AsapError::binding("bytecode engine requested but the kernel has no lowered program")
        })?),
        ExecEngine::Tier2 => Chosen::Native(ck.tier2.as_ref().ok_or_else(|| {
            AsapError::binding(
                "tier-2 engine requested but the kernel has no native specialization",
            )
        })?),
    };
    {
        let _s = asap_obs::span_with("exec", || {
            let engine = match &chosen {
                Chosen::Tree => "tree-walk",
                Chosen::Byte(_) => "bytecode",
                Chosen::Native(_) => "tier2",
            };
            vec![("engine", engine.to_string())]
        });
        match chosen {
            Chosen::Byte(p) => execute_budgeted(p, &bound.args, &mut bound.bufs, model, budget)?,
            Chosen::Tree => {
                interpret_budgeted(&ck.kernel.func, &bound.args, &mut bound.bufs, model, budget)?
            }
            // Tier-2 bypasses the model by design (no events to report).
            Chosen::Native(plan) => plan.run(&bound.args, &mut bound.bufs, budget)?,
        };
    }
    read_back(out, &bound)
}

/// As [`run`] on the bytecode engine, additionally collecting a
/// per-opcode [`ExecProfile`] (dispatch counts plus sampled wall-clock
/// attribution — the flat VM "flamegraph" `asap_cli profile` prints).
/// Errors if the kernel has no lowered program.
pub fn run_profiled<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    sparse: &SparseTensor,
    dense: &[&DenseTensor],
    out: &mut DenseTensor,
    model: &mut M,
    profile: &mut ExecProfile,
) -> Result<(), AsapError> {
    let mut bound = bind(&ck.kernel, sparse, dense, out)?;
    let p = ck.program.as_ref().ok_or_else(|| {
        AsapError::binding(
            "profiled run requires the bytecode engine but the kernel has no lowered program",
        )
    })?;
    let _s = asap_obs::span_with("exec", || vec![("engine", "bytecode-profiled".to_string())]);
    execute_budgeted_profiled(
        p,
        &bound.args,
        &mut bound.bufs,
        model,
        &Budget::unlimited(),
        profile,
    )?;
    read_back(out, &bound)
}

/// Convenience: SpMV over f64, functional run, returning `a = B·x`.
pub fn run_spmv_f64(
    ck: &CompiledKernel,
    b: &SparseTensor,
    x: &[f64],
) -> Result<Vec<f64>, AsapError> {
    let mut model = asap_ir::NullModel;
    run_spmv_f64_with(ck, b, x, &mut model)
}

/// SpMV over f64 under an arbitrary memory model (e.g. the simulator).
pub fn run_spmv_f64_with<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    b: &SparseTensor,
    x: &[f64],
    model: &mut M,
) -> Result<Vec<f64>, AsapError> {
    run_spmv_f64_engine(ck, b, x, model, ExecEngine::Auto)
}

/// SpMV over f64 with an explicit execution engine.
pub fn run_spmv_f64_engine<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    b: &SparseTensor,
    x: &[f64],
    model: &mut M,
    engine: ExecEngine,
) -> Result<Vec<f64>, AsapError> {
    run_spmv_f64_budgeted(ck, b, x, model, engine, &Budget::unlimited())
}

/// SpMV over f64 with an explicit engine, governed by `budget`.
pub fn run_spmv_f64_budgeted<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    b: &SparseTensor,
    x: &[f64],
    model: &mut M,
    engine: ExecEngine,
    budget: &Budget,
) -> Result<Vec<f64>, AsapError> {
    let n = b.dims()[1];
    if x.len() != n {
        return Err(AsapError::binding(format!(
            "x length {} must equal the matrix column count {n}",
            x.len()
        )));
    }
    let c = DenseTensor::from_f64(vec![n], x.to_vec());
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![b.dims()[0]]);
    run_with_engine_budgeted(ck, b, &[&c], &mut a, model, engine, budget)?;
    Ok(a.as_f64().to_vec())
}

/// Convenience: SpMM over f64 (`A = B·C`), functional run.
pub fn run_spmm_f64(
    ck: &CompiledKernel,
    b: &SparseTensor,
    c: &DenseTensor,
) -> Result<DenseTensor, AsapError> {
    let mut model = asap_ir::NullModel;
    run_spmm_f64_with(ck, b, c, &mut model)
}

/// SpMM over f64 under an arbitrary memory model.
pub fn run_spmm_f64_with<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    b: &SparseTensor,
    c: &DenseTensor,
    model: &mut M,
) -> Result<DenseTensor, AsapError> {
    run_spmm_f64_budgeted(ck, b, c, model, &Budget::unlimited())
}

/// SpMM over f64, governed by `budget`.
pub fn run_spmm_f64_budgeted<M: MemoryModel + ?Sized>(
    ck: &CompiledKernel,
    b: &SparseTensor,
    c: &DenseTensor,
    model: &mut M,
    budget: &Budget,
) -> Result<DenseTensor, AsapError> {
    if c.dims.len() != 2 {
        return Err(AsapError::binding(format!(
            "dense operand must be a matrix, got rank {}",
            c.dims.len()
        )));
    }
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![b.dims()[0], c.dims[1]]);
    run_with_engine_budgeted(ck, b, &[c], &mut a, model, ExecEngine::Auto, budget)?;
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_tensor::{CooTensor, Values};

    fn paper_tensor(fmt: Format) -> SparseTensor {
        let coo = CooTensor::new(
            vec![3, 3],
            vec![0, 0, 0, 2, 2, 2],
            Values::F64(vec![1.0, 2.0, 3.0]),
        );
        SparseTensor::from_coo(&coo, fmt)
    }

    #[test]
    fn three_variants_compute_identical_spmv_results() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let x = vec![1.0, 10.0, 100.0];
        let mut results = Vec::new();
        for strat in [
            PrefetchStrategy::none(),
            PrefetchStrategy::asap(4),
            PrefetchStrategy::aj(4),
        ] {
            let ck = compile(&spec, &Format::csr(), &strat).unwrap();
            assert!(!ck.is_degraded(), "{:?}", ck.warnings);
            results.push(run_spmv_f64(&ck, &b, &x).unwrap());
        }
        assert_eq!(results[0], vec![201.0, 0.0, 300.0]);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn asap_bound_chain_is_hoisted() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(45)).unwrap();
        // The size chain (const 1, muli, pos load, cast, subi...) must
        // leave the inner loop.
        assert!(
            ck.hoisted_ops >= 3,
            "expected the bound chain hoisted, got {}",
            ck.hoisted_ops
        );
        assert_eq!(ck.prefetch_ops, 2);
    }

    #[test]
    fn aj_emits_no_prefetches_for_spmm() {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let asap = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(45)).unwrap();
        let aj = compile(&spec, &Format::csr(), &PrefetchStrategy::aj(45)).unwrap();
        assert_eq!(asap.prefetch_ops, 2, "ASaP outer-loop prefetching works");
        assert_eq!(aj.prefetch_ops, 0, "A&J cannot handle SpMM");
    }

    #[test]
    fn spmm_results_match_across_variants() {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let c = DenseTensor::from_f64(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let base = compile(&spec, &Format::csr(), &PrefetchStrategy::none()).unwrap();
        let asap = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(3)).unwrap();
        let a0 = run_spmm_f64(&base, &b, &c).unwrap();
        let a1 = run_spmm_f64(&asap, &b, &c).unwrap();
        assert_eq!(a0.as_f64(), a1.as_f64());
        // Row 0: 1*C[0,:] + 2*C[2,:] = [1+10, 2+12] = [11, 14].
        assert_eq!(&a0.as_f64()[0..2], &[11.0, 14.0]);
    }

    #[test]
    fn strategies_have_labels() {
        assert_eq!(PrefetchStrategy::none().label(), "baseline");
        assert_eq!(PrefetchStrategy::asap(1).label(), "asap");
        assert_eq!(PrefetchStrategy::aj(1).label(), "ainsworth-jones");
        assert_eq!(PrefetchStrategy::FaultInjection.label(), "fault-injection");
    }

    #[test]
    fn coo_variants_agree() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::coo());
        let x = vec![2.0, 3.0, 4.0];
        let base = compile(&spec, &Format::coo(), &PrefetchStrategy::none()).unwrap();
        let asap = compile(&spec, &Format::coo(), &PrefetchStrategy::asap(2)).unwrap();
        let aj = compile(&spec, &Format::coo(), &PrefetchStrategy::aj(2)).unwrap();
        let r0 = run_spmv_f64(&base, &b, &x).unwrap();
        assert_eq!(r0, run_spmv_f64(&asap, &b, &x).unwrap());
        assert_eq!(r0, run_spmv_f64(&aj, &b, &x).unwrap());
    }

    #[test]
    fn dcsr_asap_compiles_and_runs() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::dcsr());
        let ck = compile(&spec, &Format::dcsr(), &PrefetchStrategy::asap(8)).unwrap();
        let r = run_spmv_f64(&ck, &b, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(r, vec![3.0, 0.0, 3.0]);
    }

    #[test]
    fn fault_injection_falls_back_to_baseline_with_warning() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::FaultInjection).unwrap();
        // Degraded: the compiled kernel is the baseline...
        assert_eq!(ck.strategy, PrefetchStrategy::Baseline);
        assert_eq!(ck.prefetch_ops, 0);
        // ...and the failure is recorded, typed by stage.
        assert!(ck.is_degraded());
        assert_eq!(ck.warnings.len(), 1);
        assert_eq!(ck.warnings[0].strategy, "fault-injection");
        assert_eq!(ck.warnings[0].kind, "verify");
        assert!(ck.warnings[0].to_string().contains("fell back to baseline"));
        // The fallback kernel still computes the right answer.
        let b = paper_tensor(Format::csr());
        let r = run_spmv_f64(&ck, &b, &[1.0, 10.0, 100.0]).unwrap();
        assert_eq!(r, vec![201.0, 0.0, 300.0]);
    }

    #[test]
    fn baseline_failure_is_a_hard_error() {
        // An invalid spec cannot degrade: there is nothing to fall back to.
        let mut spec = KernelSpec::spmv(ValueKind::F64);
        spec.output.map = vec![1]; // reduction index in the output
        let err = compile(&spec, &Format::csr(), &PrefetchStrategy::none()).unwrap_err();
        assert_eq!(err.kind(), "spec");
        // The same spec under a prefetch strategy also fails hard: the
        // baseline fallback hits the identical spec error.
        let err = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(4)).unwrap_err();
        assert_eq!(err.kind(), "spec");
    }

    #[test]
    fn codegen_failure_propagates_when_baseline_also_fails() {
        // A sparse operand whose rank disagrees with the storage format
        // fails codegen under every strategy, so the fallback cannot help:
        // the typed error must propagate (never a panic).
        let mut spec = KernelSpec::spmv(ValueKind::F64);
        spec.inputs[0].map = vec![0]; // rank-1 map, rank-2 CSR format
        let err = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(4)).unwrap_err();
        assert_eq!(err.kind(), "codegen");
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn fuel_budget_traps_with_typed_error() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let x = [1.0, 10.0, 100.0];
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(4)).unwrap();
        let mut model = asap_ir::NullModel;
        // One unit of fuel cannot cover a 3-row SpMV: typed trap, not a
        // hang or panic, with the governing loop's op location attached.
        let budget = Budget::unlimited().with_fuel(1);
        let err =
            run_spmv_f64_budgeted(&ck, &b, &x, &mut model, ExecEngine::Auto, &budget).unwrap_err();
        assert_eq!(err.kind(), "budget");
        let v = err.budget_violation().expect("structured violation");
        assert_eq!(v.limit, 1);
        // Enough fuel and the identical call succeeds with the exact result.
        let budget = Budget::unlimited().with_fuel(1_000);
        let r = run_spmv_f64_budgeted(&ck, &b, &x, &mut model, ExecEngine::Auto, &budget).unwrap();
        assert_eq!(r, vec![201.0, 0.0, 300.0]);
    }

    #[test]
    fn tier2_specializes_csr_asap_spmv_bit_identically() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let x = vec![1.0, 10.0, 100.0];
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(45)).unwrap();
        let plan = ck.tier2.as_ref().expect("CSR ASaP SpMV must specialize");
        assert_eq!(plan.label(), "spmv");
        assert_eq!(plan.key(), "spmv:d45:c90");
        let mut model = asap_ir::NullModel;
        let vm = run_spmv_f64_engine(&ck, &b, &x, &mut model, ExecEngine::Bytecode).unwrap();
        let t2 = run_spmv_f64_engine(&ck, &b, &x, &mut model, ExecEngine::Tier2).unwrap();
        let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&vm), bits(&t2));
        assert_eq!(t2, vec![201.0, 0.0, 300.0]);
    }

    #[test]
    fn tier2_specializes_csr_asap_spmm_bit_identically() {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let c = DenseTensor::from_f64(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(3)).unwrap();
        let plan = ck.tier2.as_ref().expect("CSR ASaP SpMM must specialize");
        assert_eq!(plan.label(), "spmm");
        let vm = run_spmm_f64(&ck, &b, &c).unwrap();
        let mut out = DenseTensor::zeros(ValueKind::F64, vec![3, 2]);
        let mut model = asap_ir::NullModel;
        run_with_engine(&ck, &b, &[&c], &mut out, &mut model, ExecEngine::Tier2).unwrap();
        assert_eq!(vm.as_f64(), out.as_f64());
        assert_eq!(&out.as_f64()[0..2], &[11.0, 14.0]);
    }

    #[test]
    fn non_matching_shapes_have_no_tier2_plan() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        // Baseline CSR: no SpmvLoop superinstruction in the bytecode.
        let base = compile(&spec, &Format::csr(), &PrefetchStrategy::none()).unwrap();
        assert!(base.tier2.is_none());
        // COO ASaP: a different loop structure entirely.
        let coo = compile(&spec, &Format::coo(), &PrefetchStrategy::asap(8)).unwrap();
        assert!(coo.tier2.is_none());
        // Requesting tier-2 explicitly on such a kernel is a typed
        // binding error, never a silent fallback.
        let b = paper_tensor(Format::csr());
        let mut model = asap_ir::NullModel;
        let err =
            run_spmv_f64_engine(&base, &b, &[1.0; 3], &mut model, ExecEngine::Tier2).unwrap_err();
        assert_eq!(err.kind(), "binding");
        assert!(err.to_string().contains("no native specialization"));
    }

    #[test]
    fn tier2_fuel_trap_matches_the_vm() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let x = [1.0, 10.0, 100.0];
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(4)).unwrap();
        let mut model = asap_ir::NullModel;
        for fuel in 0..8 {
            let budget = Budget::unlimited().with_fuel(fuel);
            let vm = run_spmv_f64_budgeted(&ck, &b, &x, &mut model, ExecEngine::Bytecode, &budget);
            let t2 = run_spmv_f64_budgeted(&ck, &b, &x, &mut model, ExecEngine::Tier2, &budget);
            match (vm, t2) {
                (Ok(a), Ok(c)) => assert_eq!(a, c, "fuel {fuel}"),
                (Err(a), Err(c)) => {
                    assert_eq!(a.to_string(), c.to_string(), "fuel {fuel}")
                }
                (a, c) => panic!("fuel {fuel}: engines diverge: vm={a:?} tier2={c:?}"),
            }
        }
    }

    #[test]
    fn bytes_ceiling_is_checked_at_bind_time() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let x = [1.0, 10.0, 100.0];
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::none()).unwrap();
        let mut model = asap_ir::NullModel;
        let budget = Budget::unlimited().with_bytes(8);
        let err =
            run_spmv_f64_budgeted(&ck, &b, &x, &mut model, ExecEngine::Auto, &budget).unwrap_err();
        assert_eq!(err.kind(), "budget");
        let v = err.budget_violation().unwrap();
        assert_eq!(v.resource, asap_ir::Resource::Bytes);
        assert!(v.spent > 8, "spent reports the actual allocation");
    }

    #[test]
    fn mismatched_x_length_is_a_binding_error() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::none()).unwrap();
        let err = run_spmv_f64(&ck, &b, &[1.0]).unwrap_err();
        assert_eq!(err.kind(), "binding");
    }
}
