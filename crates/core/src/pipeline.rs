//! The end-to-end compilation pipeline: sparsify (with or without a
//! prefetch strategy), then clean up (LICM + DCE), producing a
//! [`CompiledKernel`] ready to run — the counterpart of the paper's three
//! implementation variants (Section 4.3).

use crate::aj::{ainsworth_jones, AjConfig};
use crate::asap::{AsapConfig, AsapHook};
use asap_ir::{cse, dce, fold, licm, MemoryModel};
use asap_sparsifier::{run as run_kernel, sparsify, KernelSpec, SparsifiedKernel};
use asap_tensor::{DenseTensor, Format, IndexWidth, SparseTensor, ValueKind};

/// Which software-prefetching variant to compile (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefetchStrategy {
    /// Variant 1: plain sparsification, no software prefetching.
    Baseline,
    /// Variant 2: ASaP — semantic bounds, injected during sparsification.
    Asap(AsapConfig),
    /// Variant 3: the Ainsworth & Jones low-level pass, applied post-hoc.
    AinsworthJones(AjConfig),
}

impl PrefetchStrategy {
    /// ASaP at the paper's configuration (distance 45, locality 2).
    pub fn asap(distance: usize) -> PrefetchStrategy {
        PrefetchStrategy::Asap(AsapConfig::with_distance(distance))
    }

    /// Ainsworth & Jones at the same distance.
    pub fn aj(distance: usize) -> PrefetchStrategy {
        PrefetchStrategy::AinsworthJones(AjConfig::with_distance(distance))
    }

    pub fn none() -> PrefetchStrategy {
        PrefetchStrategy::Baseline
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PrefetchStrategy::Baseline => "baseline",
            PrefetchStrategy::Asap(_) => "asap",
            PrefetchStrategy::AinsworthJones(_) => "ainsworth-jones",
        }
    }
}

/// A compiled kernel plus compilation metadata.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub kernel: SparsifiedKernel,
    pub strategy: PrefetchStrategy,
    /// Number of `memref.prefetch` ops in the final IR.
    pub prefetch_ops: usize,
    /// Ops hoisted by LICM (the bound chain, for ASaP).
    pub hoisted_ops: usize,
}

/// Compile a kernel for a sparse operand stored in `format` with the given
/// index width, applying the chosen prefetch strategy and then LICM + DCE
/// (mirroring the shared `-O3` backend of the paper's setup).
pub fn compile_with_width(
    spec: &KernelSpec,
    format: &Format,
    index_width: IndexWidth,
    strategy: &PrefetchStrategy,
) -> Result<CompiledKernel, String> {
    let mut kernel = match strategy {
        PrefetchStrategy::Baseline => sparsify(spec, format, index_width, None)?,
        PrefetchStrategy::Asap(cfg) => {
            let mut hook = AsapHook::new(*cfg);
            sparsify(spec, format, index_width, Some(&mut hook))?
        }
        PrefetchStrategy::AinsworthJones(_) => sparsify(spec, format, index_width, None)?,
    };
    if let PrefetchStrategy::AinsworthJones(cfg) = strategy {
        ainsworth_jones(&mut kernel.func, cfg);
    }
    let hoisted = licm(&mut kernel.func);
    fold(&mut kernel.func);
    cse(&mut kernel.func);
    dce(&mut kernel.func);
    asap_ir::verify(&kernel.func).map_err(|e| e.to_string())?;
    Ok(CompiledKernel {
        prefetch_ops: kernel.func.prefetch_count(),
        kernel,
        strategy: *strategy,
        hoisted_ops: hoisted,
    })
}

/// As [`compile_with_width`] with the default narrow (32-bit) index width,
/// which every tensor whose nnz and dims fit in `u32` uses.
pub fn compile(
    spec: &KernelSpec,
    format: &Format,
    strategy: &PrefetchStrategy,
) -> CompiledKernel {
    compile_with_width(spec, format, IndexWidth::U32, strategy)
        .expect("compilation of a validated spec cannot fail")
}

/// Run a compiled kernel (generic operands) under the given memory model.
pub fn run(
    ck: &CompiledKernel,
    sparse: &SparseTensor,
    dense: &[&DenseTensor],
    out: &mut DenseTensor,
    model: &mut dyn MemoryModel,
) -> Result<(), String> {
    run_kernel(&ck.kernel, sparse, dense, out, model)
}

/// Convenience: SpMV over f64, functional run, returning `a = B·x`.
pub fn run_spmv_f64(ck: &CompiledKernel, b: &SparseTensor, x: &[f64]) -> Vec<f64> {
    let mut model = asap_ir::NullModel;
    run_spmv_f64_with(ck, b, x, &mut model)
}

/// SpMV over f64 under an arbitrary memory model (e.g. the simulator).
pub fn run_spmv_f64_with(
    ck: &CompiledKernel,
    b: &SparseTensor,
    x: &[f64],
    model: &mut dyn MemoryModel,
) -> Vec<f64> {
    let n = b.dims()[1];
    assert_eq!(x.len(), n, "x length must equal the matrix column count");
    let c = DenseTensor::from_f64(vec![n], x.to_vec());
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![b.dims()[0]]);
    run(ck, b, &[&c], &mut a, model).expect("spmv run failed");
    a.as_f64().to_vec()
}

/// Convenience: SpMM over f64 (`A = B·C`), functional run.
pub fn run_spmm_f64(ck: &CompiledKernel, b: &SparseTensor, c: &DenseTensor) -> DenseTensor {
    let mut model = asap_ir::NullModel;
    run_spmm_f64_with(ck, b, c, &mut model)
}

/// SpMM over f64 under an arbitrary memory model.
pub fn run_spmm_f64_with(
    ck: &CompiledKernel,
    b: &SparseTensor,
    c: &DenseTensor,
    model: &mut dyn MemoryModel,
) -> DenseTensor {
    let mut a = DenseTensor::zeros(ValueKind::F64, vec![b.dims()[0], c.dims[1]]);
    run(ck, b, &[c], &mut a, model).expect("spmm run failed");
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_tensor::{CooTensor, Values};

    fn paper_tensor(fmt: Format) -> SparseTensor {
        let coo = CooTensor::new(
            vec![3, 3],
            vec![0, 0, 0, 2, 2, 2],
            Values::F64(vec![1.0, 2.0, 3.0]),
        );
        SparseTensor::from_coo(&coo, fmt)
    }

    #[test]
    fn three_variants_compute_identical_spmv_results() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let x = vec![1.0, 10.0, 100.0];
        let mut results = Vec::new();
        for strat in [
            PrefetchStrategy::none(),
            PrefetchStrategy::asap(4),
            PrefetchStrategy::aj(4),
        ] {
            let ck = compile(&spec, &Format::csr(), &strat);
            results.push(run_spmv_f64(&ck, &b, &x));
        }
        assert_eq!(results[0], vec![201.0, 0.0, 300.0]);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn asap_bound_chain_is_hoisted() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let ck = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(45));
        // The size chain (const 1, muli, pos load, cast, subi...) must
        // leave the inner loop.
        assert!(
            ck.hoisted_ops >= 3,
            "expected the bound chain hoisted, got {}",
            ck.hoisted_ops
        );
        assert_eq!(ck.prefetch_ops, 2);
    }

    #[test]
    fn aj_emits_no_prefetches_for_spmm() {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let asap = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(45));
        let aj = compile(&spec, &Format::csr(), &PrefetchStrategy::aj(45));
        assert_eq!(asap.prefetch_ops, 2, "ASaP outer-loop prefetching works");
        assert_eq!(aj.prefetch_ops, 0, "A&J cannot handle SpMM");
    }

    #[test]
    fn spmm_results_match_across_variants() {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let b = paper_tensor(Format::csr());
        let c = DenseTensor::from_f64(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let base = compile(&spec, &Format::csr(), &PrefetchStrategy::none());
        let asap = compile(&spec, &Format::csr(), &PrefetchStrategy::asap(3));
        let a0 = run_spmm_f64(&base, &b, &c);
        let a1 = run_spmm_f64(&asap, &b, &c);
        assert_eq!(a0.as_f64(), a1.as_f64());
        // Row 0: 1*C[0,:] + 2*C[2,:] = [1+10, 2+12] = [11, 14].
        assert_eq!(&a0.as_f64()[0..2], &[11.0, 14.0]);
    }

    #[test]
    fn strategies_have_labels() {
        assert_eq!(PrefetchStrategy::none().label(), "baseline");
        assert_eq!(PrefetchStrategy::asap(1).label(), "asap");
        assert_eq!(PrefetchStrategy::aj(1).label(), "ainsworth-jones");
    }

    #[test]
    fn coo_variants_agree() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::coo());
        let x = vec![2.0, 3.0, 4.0];
        let base = compile(&spec, &Format::coo(), &PrefetchStrategy::none());
        let asap = compile(&spec, &Format::coo(), &PrefetchStrategy::asap(2));
        let aj = compile(&spec, &Format::coo(), &PrefetchStrategy::aj(2));
        let r0 = run_spmv_f64(&base, &b, &x);
        assert_eq!(r0, run_spmv_f64(&asap, &b, &x));
        assert_eq!(r0, run_spmv_f64(&aj, &b, &x));
    }

    #[test]
    fn dcsr_asap_compiles_and_runs() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let b = paper_tensor(Format::dcsr());
        let ck = compile(&spec, &Format::dcsr(), &PrefetchStrategy::asap(8));
        let r = run_spmv_f64(&ck, &b, &[1.0, 1.0, 1.0]);
        assert_eq!(r, vec![3.0, 0.0, 3.0]);
    }
}
