//! The ASaP prefetch-injection hook: the paper's three-step generation
//! scheme (Section 3.2, Figure 5), fired *during* sparsification at every
//! iterate-and-locate site.
//!
//! The critical distinction from prior art is Step 2's bound: ASaP bounds
//! the look-ahead coordinate load by the **total coordinate-buffer size**
//! (computed at runtime via the `crd_buf_sz` recursion over position
//! buffers), not by the enclosing loop's upper limit. Prefetching thus
//! stays live across segment boundaries: during the last `distance`
//! iterations of segment `ii-1` it covers the first `distance` elements
//! of segment `ii` — the S·distance extra prefetches of Section 3.2.2.

use asap_ir::{CmpPred, FuncBuilder};
use asap_sparsifier::{LocateCtx, LocateHook, Stride};

/// Configuration of the ASaP scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsapConfig {
    /// Prefetch look-ahead, in iterations of the locate loop. The paper's
    /// evaluation fixes 45 (Section 4.3); it is profile-tunable.
    pub distance: usize,
    /// Locality hint carried by every emitted `memref.prefetch`
    /// (the paper uses `locality<2>`).
    pub locality: u8,
    /// Step 1: also prefetch the coordinate stream itself at
    /// `2*distance`. The paper found omitting this consistently degrades
    /// performance (Section 3.2.1); exposed for the ablation benchmark.
    pub prefetch_crd_stream: bool,
}

impl AsapConfig {
    /// The paper's evaluation configuration: distance 45, locality 2,
    /// Step 1 enabled.
    pub fn paper() -> AsapConfig {
        AsapConfig {
            distance: 45,
            locality: 2,
            prefetch_crd_stream: true,
        }
    }

    pub fn with_distance(distance: usize) -> AsapConfig {
        AsapConfig {
            distance,
            ..AsapConfig::paper()
        }
    }
}

impl Default for AsapConfig {
    fn default() -> Self {
        AsapConfig::paper()
    }
}

/// Record of one injection site, for diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionSite {
    /// Storage level whose locate loop was instrumented.
    pub level: usize,
    /// Number of dense targets prefetched (Step 3 repetitions).
    pub targets: usize,
}

/// The [`LocateHook`] implementation injecting the three-step sequence.
#[derive(Debug, Default)]
pub struct AsapHook {
    pub config: AsapConfig,
    /// Sites instrumented so far.
    pub sites: Vec<InjectionSite>,
}

impl AsapHook {
    pub fn new(config: AsapConfig) -> AsapHook {
        AsapHook {
            config,
            sites: Vec::new(),
        }
    }
}

impl LocateHook for AsapHook {
    fn on_locate(&mut self, b: &mut FuncBuilder, ctx: &LocateCtx<'_>) {
        let cfg = self.config;
        let loc = cfg.locality;

        // Step 1: prefetch crd[jj + 2*distance] so the Step-2 operand is
        // resident when its turn comes (Fig. 5 lines 2–3).
        if cfg.prefetch_crd_stream {
            let d2 = b.const_index(2 * cfg.distance);
            let i2 = b.addi(ctx.iter, d2);
            b.prefetch_read(ctx.crd, i2, loc);
        }

        // Step 2: t = crd[min(jj + distance, bound)] with the semantic
        // bound = total crd size - 1 (Fig. 5 lines 5–18). The size chain
        // is loop-invariant and hoisted by LICM.
        let size = ctx.size_chain.emit(b);
        let c1 = b.const_index(1);
        let bound = b.subi(size, c1);
        let d = b.const_index(cfg.distance);
        let jd = b.addi(ctx.iter, d);
        let in_range = b.cmpi(CmpPred::Ult, jd, bound);
        let clamped = b.select(in_range, jd, bound);
        let raw = b.load(ctx.crd, clamped);
        let ahead = b.to_index(raw);

        // Step 3: prefetch each located dense operand at the look-ahead
        // coordinate (Fig. 5 lines 20–21). For row-strided operands this
        // covers the first cache line of the future row (Fig. 9).
        for t in ctx.targets {
            let idx = match t.stride {
                Stride::One => ahead,
                Stride::Elems(s) => b.muli(ahead, s),
            };
            b.prefetch_read(t.buf, idx, loc);
        }

        self.sites.push(InjectionSite {
            level: ctx.level,
            targets: ctx.targets.len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_ir::print_function;
    use asap_sparsifier::{sparsify, KernelSpec};
    use asap_tensor::{Format, IndexWidth, ValueKind};

    #[test]
    fn spmv_injection_matches_figure_5() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let mut hook = AsapHook::new(AsapConfig::paper());
        let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, Some(&mut hook)).unwrap();
        assert_eq!(
            hook.sites,
            vec![InjectionSite {
                level: 1,
                targets: 1
            }]
        );
        // Two prefetches per iteration: crd stream + target.
        assert_eq!(k.func.prefetch_count(), 2);
        let text = print_function(&k.func);
        assert!(text.contains("locality<2>"));
        assert!(
            text.contains("arith.constant 90 : index"),
            "2*distance:\n{text}"
        );
        assert!(text.contains("arith.select"));
    }

    #[test]
    fn step1_can_be_disabled_for_ablation() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let cfg = AsapConfig {
            prefetch_crd_stream: false,
            ..AsapConfig::paper()
        };
        let mut hook = AsapHook::new(cfg);
        let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, Some(&mut hook)).unwrap();
        assert_eq!(k.func.prefetch_count(), 1);
    }

    #[test]
    fn spmm_prefetches_first_line_of_next_row() {
        let spec = KernelSpec::spmm(ValueKind::F64);
        let mut hook = AsapHook::new(AsapConfig::paper());
        let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, Some(&mut hook)).unwrap();
        // Outer-loop prefetching: the target prefetch index is j_ahead * N.
        assert_eq!(k.func.prefetch_count(), 2);
        let text = print_function(&k.func);
        assert!(text.contains("arith.muli"), "row stride multiply:\n{text}");
    }

    #[test]
    fn mttkrp_instruments_both_locate_levels() {
        let spec = KernelSpec::mttkrp(ValueKind::F64);
        let mut hook = AsapHook::new(AsapConfig::paper());
        let k = sparsify(&spec, &Format::csf(3), IndexWidth::U64, Some(&mut hook)).unwrap();
        assert_eq!(hook.sites.len(), 2);
        assert_eq!(k.func.prefetch_count(), 4);
    }

    #[test]
    fn custom_distance_is_respected() {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let mut hook = AsapHook::new(AsapConfig::with_distance(16));
        let k = sparsify(&spec, &Format::csr(), IndexWidth::U64, Some(&mut hook)).unwrap();
        let text = print_function(&k.func);
        assert!(text.contains("arith.constant 32 : index"));
        assert!(text.contains("arith.constant 16 : index"));
    }
}
