#!/bin/sh
# Regenerate every figure/table of the paper. Sequential (figures share
# the CPU with nothing else); ~1h at full size on one core.
set -x
cd "$(dirname "$0")"
BIN=target/release
$BIN/fig_tables          > results/tables.txt 2>&1
$BIN/fig6_spmv_mpki  --out results/fig6.json  > results/fig6.txt  2>&1
$BIN/fig7_spmv_groups --out results/fig7.json > results/fig7.txt  2>&1
$BIN/fig11_vs_aj     --out results/fig11.json > results/fig11.txt 2>&1
$BIN/fig8_spmm_mpki  --out results/fig8.json  > results/fig8.txt  2>&1
$BIN/fig10_spmm_groups --out results/fig10.json > results/fig10.txt 2>&1
$BIN/fig12_roofline  --out results/fig12.json > results/fig12.txt 2>&1
$BIN/ablations       > results/ablations.txt 2>&1
echo ALL_FIGURES_DONE
