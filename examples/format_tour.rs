//! A tour of the sparse tensor dialect substrate: the paper's Figures 1–5
//! reproduced end to end on the 3x3 example matrix.
//!
//! Prints: the MLIR-style format encodings (Fig. 1b), the serialized
//! buffers of each format (Fig. 2), the iteration-graph elaboration
//! (Fig. 4), the sparsified loop structures (Fig. 3), and the injected
//! three-step prefetch block (Fig. 5).
//!
//! ```sh
//! cargo run --example format_tour
//! ```

use asap::core::{AsapConfig, AsapHook};
use asap::ir::print_function;
use asap::sparsifier::{sparsify, IterationGraph, KernelSpec};
use asap::tensor::{CooTensor, Format, IndexWidth, SparseTensor, ValueKind, Values};

fn main() {
    // The 3x3 matrix of Figure 2: row 0 has cols 0,2; row 1 empty;
    // row 2 has col 2.
    let coo = CooTensor::new(
        vec![3, 3],
        vec![0, 0, 0, 2, 2, 2],
        Values::F64(vec![1.0, 2.0, 3.0]),
    );
    let spec = KernelSpec::spmv(ValueKind::F64);

    for fmt in [Format::coo(), Format::csr(), Format::dcsr()] {
        println!("==================== {fmt} ====================");
        println!("encoding: {}", fmt.mlir_encoding());

        // Figure 2: the serialized coordinate hierarchy tree.
        let t = SparseTensor::from_coo(&coo, fmt.clone());
        t.check_invariants().expect("storage invariants");
        for l in 0..fmt.rank() {
            let st = t.level(l);
            let dim_name = ["i", "j"][fmt.dim_of_level(l)];
            if !st.pos.is_empty() {
                println!("B{dim_name}_pos = {:?}", st.pos);
            }
            if !st.crd.is_empty() {
                println!("B{dim_name}_crd = {:?}", st.crd);
            }
        }
        println!("B_vals  = {:?}\n", t.values());

        // Figure 4: the iteration graph elaboration stages.
        let g = IterationGraph::build(&spec, &fmt);
        println!("{}", g.describe(&spec, &fmt));

        // Figure 3: the sparsified imperative code.
        let plain = sparsify(&spec, &fmt, IndexWidth::U64, None).expect("sparsifies");
        println!("--- sparsified SpMV ({fmt}) ---");
        println!("{}", print_function(&plain.func));

        // Figure 5: ASaP's three-step injection (distance 45).
        let mut hook = AsapHook::new(AsapConfig::paper());
        let mut with_pf =
            sparsify(&spec, &fmt, IndexWidth::U64, Some(&mut hook)).expect("sparsifies");
        asap::ir::licm(&mut with_pf.func);
        asap::ir::dce(&mut with_pf.func);
        println!(
            "--- with ASaP prefetching: {} site(s), {} prefetch op(s) ---",
            hook.sites.len(),
            with_pf.func.prefetch_count()
        );
        for line in print_function(&with_pf.func)
            .lines()
            .filter(|l| l.contains("prefetch") || l.contains("select") || l.contains("minui"))
        {
            println!("  {}", line.trim());
        }
        println!();
    }
}
