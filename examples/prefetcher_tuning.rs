//! Hardware-prefetcher tuning: the experiment behind the paper's first
//! insight — disabling inaccurate hardware prefetchers (L1 NLP, L2 AMP)
//! frees MSHRs and bandwidth that software prefetching uses better.
//!
//! Sweeps all Table-2 configurations for SpMV on an unstructured matrix
//! and reports throughput plus the resource-contention counters that
//! explain the differences.
//!
//! ```sh
//! cargo run --release --example prefetcher_tuning
//! ```

use asap::core::{compile_with_width, run_spmv_f64_with, PrefetchStrategy};
use asap::matrices::gen;
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};

fn main() {
    let tri = gen::erdos_renyi(150_000, 8, 51);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let x: Vec<f64> = (0..tri.ncols).map(|i| 1.0 + (i % 7) as f64).collect();
    let spec = KernelSpec::spmv(ValueKind::F64);
    let cfg = GracemontConfig::scaled();

    let hw_configs = [
        (
            "default (Table 2 out-of-box)",
            PrefetcherConfig::hw_default(),
        ),
        (
            "optimized (NLP+AMP off)",
            PrefetcherConfig::optimized_spmv(),
        ),
        ("all off", PrefetcherConfig::all_off()),
        (
            "NLP only off",
            PrefetcherConfig {
                l1_nlp: false,
                ..PrefetcherConfig::hw_default()
            },
        ),
        (
            "AMP only off",
            PrefetcherConfig {
                l2_amp: false,
                ..PrefetcherConfig::hw_default()
            },
        ),
    ];

    for (variant, strat) in [
        ("baseline", PrefetchStrategy::none()),
        ("asap", PrefetchStrategy::asap(45)),
    ] {
        println!("### {variant}");
        println!(
            "{:<30} {:>10} {:>10} {:>10} {:>12} {:>12}",
            "hw config", "cycles(M)", "thrpt", "swpf-drop", "hwpf-issued", "pf-unused"
        );
        let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), &strat)
            .expect("compiles");
        let mut best = (0.0, "");
        for (name, pf) in &hw_configs {
            let mut machine = Machine::new(cfg, *pf);
            let _ = run_spmv_f64_with(&ck, &sparse, &x, &mut machine);
            let c = machine.counters();
            let thrpt = sparse.nnz() as f64 / (cfg.cycles_to_seconds(c.cycles) * 1e3);
            if thrpt > best.0 {
                best = (thrpt, name);
            }
            println!(
                "{:<30} {:>10.1} {:>10.0} {:>10} {:>12} {:>12}",
                name,
                c.cycles as f64 / 1e6,
                thrpt,
                c.sw_pf_dropped,
                c.hw_pf_issued,
                c.pf_unused_evictions
            );
        }
        println!("best for {variant}: {}\n", best.1);
    }
    println!("paper insight: the optimized configuration amplifies ASaP's benefit;");
    println!("the baseline is comparatively insensitive to it.");
}
