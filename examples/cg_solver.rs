//! Scientific-computing scenario: a conjugate-gradient solve of the 2-D
//! Poisson problem (5-point stencil), the paper's introductory example of
//! sparse matrices from discretized PDEs.
//!
//! The SpMV inside each CG iteration runs through the compiled kernel on
//! the simulator. Structured stencil matrices are the regime where
//! hardware prefetchers already do well — ASaP's gain here is small or
//! negative (the "Others" bar of Figure 7), which this example shows
//! honestly.
//!
//! ```sh
//! cargo run --release --example cg_solver
//! ```

use asap::core::{compile_with_width, run_spmv_f64_with, CompiledKernel, PrefetchStrategy};
use asap::matrices::gen;
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solve A x = b with plain CG, counting simulated cycles of the SpMVs.
fn cg(
    ck: &CompiledKernel,
    a: &SparseTensor,
    b: &[f64],
    machine: &mut Machine,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    for it in 0..max_iters {
        let ap = run_spmv_f64_with(ck, a, &p, machine).expect("SpMV kernel runs");
        let alpha = rs / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        if rs_new.sqrt() < 1e-8 {
            return (x, it + 1);
        }
        let beta = rs_new / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
    }
    (x, max_iters)
}

fn main() {
    let (nx, ny) = (120, 120);
    let tri = gen::stencil5(nx, ny);
    let n = nx * ny;
    let a = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    println!("Poisson {nx}x{ny}: {} unknowns, {} non-zeros", n, a.nnz());

    // Right-hand side: a point source in the middle of the grid.
    let mut b = vec![0.0; n];
    b[ny / 2 * nx + nx / 2] = 1.0;

    let spec = KernelSpec::spmv(ValueKind::F64);
    let cfg = GracemontConfig::scaled();
    let mut cycle_counts = Vec::new();
    let mut solutions = Vec::new();
    for (label, strat, pf) in [
        (
            "baseline",
            PrefetchStrategy::none(),
            PrefetcherConfig::hw_default(),
        ),
        (
            "asap",
            PrefetchStrategy::asap(45),
            PrefetcherConfig::optimized_spmv(),
        ),
    ] {
        let ck = compile_with_width(&spec, a.format(), a.index_width(), &strat).unwrap();
        let mut machine = Machine::new(cfg, pf);
        let (x, iters) = cg(&ck, &a, &b, &mut machine, 300);
        let c = machine.counters();
        println!(
            "{label:<9} converged in {iters} iterations; SpMV cycles total {} (l2-mpki {:.2})",
            c.cycles,
            c.l2_mpki()
        );
        cycle_counts.push(c.cycles);
        solutions.push(x);
    }
    let max_diff = solutions[0]
        .iter()
        .zip(&solutions[1])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-10, "variants diverged: {max_diff}");
    println!(
        "asap/baseline cycle ratio on this structured stencil: {:.2} \
         (near or above 1.0 is expected here — see Figure 7 'Others')",
        cycle_counts[1] as f64 / cycle_counts[0] as f64
    );

    // Residual check: ||Ax - b|| small.
    let ax = tri.dense_spmv(&solutions[1]);
    let resid: f64 = ax
        .iter()
        .zip(&b)
        .map(|(y, bb)| (y - bb) * (y - bb))
        .sum::<f64>()
        .sqrt();
    println!("final residual ||Ax-b|| = {resid:.2e}");
    assert!(resid < 1e-6);
}
