//! Quickstart: compile SpMV over a CSR matrix with ASaP prefetching,
//! run it, and peek at the generated IR.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asap::core::{compile, run_spmv_f64, PrefetchStrategy};
use asap::ir::print_function;
use asap::matrices::gen;
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};

fn main() {
    // 1. A small banded matrix in coordinate form.
    let tri = gen::banded(16, 2, 7);
    println!(
        "matrix: {}x{}, {} non-zeros",
        tri.nrows,
        tri.ncols,
        tri.nnz()
    );

    // 2. Store it as CSR (pos/crd/values buffers).
    let b = SparseTensor::from_coo(&tri.to_coo(), Format::csr());
    println!("CSR Bj_pos[0..5] = {:?}", &b.level(1).pos[..5]);
    println!("CSR Bj_crd[0..5] = {:?}", &b.level(1).crd[..5]);

    // 3. Compile SpMV three ways: baseline, ASaP, Ainsworth&Jones.
    let spec = KernelSpec::spmv(ValueKind::F64);
    let baseline = compile(&spec, b.format(), &PrefetchStrategy::none()).expect("compiles");
    let asap = compile(&spec, b.format(), &PrefetchStrategy::asap(45)).expect("compiles");
    let aj = compile(&spec, b.format(), &PrefetchStrategy::aj(45)).expect("compiles");
    println!(
        "prefetch ops: baseline={}, asap={}, aj={}",
        baseline.prefetch_ops, asap.prefetch_ops, aj.prefetch_ops
    );

    // 4. Run and verify against the dense reference.
    let x: Vec<f64> = (0..16).map(|i| 1.0 + i as f64 * 0.5).collect();
    let y = run_spmv_f64(&asap, &b, &x).expect("kernel runs");
    let yref = tri.dense_spmv(&x);
    let max_err = y
        .iter()
        .zip(&yref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |asap - reference| = {max_err:.2e}");
    assert!(max_err < 1e-9);

    // 5. The generated IR (the paper's Figure 3b plus the Figure 5
    //    prefetch block, after LICM hoisted the bound chain).
    println!(
        "\n--- ASaP SpMV IR ---\n{}",
        print_function(&asap.kernel.func)
    );
}
