//! Profile-guided prefetch-distance tuning (the paper's future-work
//! direction, Sections 3.2.3 and 6): sweep candidate distances on a
//! row-sampled slice of the matrix under the simulator, pick the best,
//! then validate the choice on the full matrix.
//!
//! ```sh
//! cargo run --release --example autotune_distance
//! ```

use asap::core::{default_candidates, run_spmv_f64_with, tune_distance};
use asap::matrices::{gen, Triplets};
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};

/// Keep every k-th row (shifted down) as the profiling sample.
fn sample_rows(tri: &Triplets, keep_every: usize) -> Triplets {
    let mut s = Triplets::new(tri.nrows / keep_every, tri.ncols);
    for i in 0..tri.nnz() {
        let r = tri.rows[i];
        if r.is_multiple_of(keep_every) && r / keep_every < s.nrows {
            s.push(r / keep_every, tri.cols[i], tri.vals[i]);
        }
    }
    s
}

fn main() {
    let tri = gen::erdos_renyi(120_000, 8, 3);
    let sample = sample_rows(&tri, 10);
    println!(
        "matrix: {} nnz; profiling sample: {} nnz",
        tri.nnz(),
        sample.nnz()
    );

    let spec = KernelSpec::spmv(ValueKind::F64);
    let cfg = GracemontConfig::scaled();
    let pf = PrefetcherConfig::optimized_spmv();
    let sample_t = SparseTensor::from_coo(&sample.to_coo_f64(), Format::csr());
    let xs: Vec<f64> = (0..sample.ncols).map(|i| (i % 5) as f64).collect();

    let outcome = tune_distance(
        &spec,
        &Format::csr(),
        sample_t.index_width(),
        &default_candidates(),
        |ck| {
            let mut m = Machine::new(cfg, pf);
            let _ = run_spmv_f64_with(ck, &sample_t, &xs, &mut m);
            m.counters().cycles
        },
    )
    .expect("tuning succeeds");

    println!("\ndistance sweep on the sample:");
    for s in &outcome.samples {
        let marker = if s.distance == outcome.best_distance {
            "  <= best"
        } else {
            ""
        };
        println!("  d={:<4} cost={} cycles{marker}", s.distance, s.cost);
    }

    // Validate on the full matrix: tuned vs the paper's fixed 45.
    let full = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let xf: Vec<f64> = (0..tri.ncols).map(|i| (i % 5) as f64).collect();
    let mut report = Vec::new();
    for d in [outcome.best_distance, 45] {
        let ck = asap::core::compile_with_width(
            &spec,
            &Format::csr(),
            full.index_width(),
            &asap::core::PrefetchStrategy::asap(d),
        )
        .unwrap();
        let mut m = Machine::new(cfg, pf);
        let _ = run_spmv_f64_with(&ck, &full, &xf, &mut m);
        report.push((d, m.counters().cycles));
    }
    println!(
        "\nfull matrix: tuned d={} -> {} cycles; paper d=45 -> {} cycles ({:+.1}%)",
        report[0].0,
        report[0].1,
        report[1].1,
        100.0 * (report[1].1 as f64 - report[0].1 as f64) / report[1].1 as f64
    );
}
