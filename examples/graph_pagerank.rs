//! Graph analytics scenario: PageRank power iteration on a synthetic
//! power-law (social-network-like) graph, with each SpMV simulated on the
//! Gracemont-like machine — the workload class the paper's introduction
//! motivates (adjacency matrices with low-degree vertices).
//!
//! Compares baseline vs ASaP end-to-end: same ranks, fewer simulated
//! cycles per iteration on the memory-bound graph.
//!
//! ```sh
//! cargo run --release --example graph_pagerank
//! ```

use asap::core::{compile_with_width, run_spmv_f64_with, CompiledKernel, PrefetchStrategy};
use asap::matrices::gen;
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};

const DAMPING: f64 = 0.85;
const ITERS: usize = 5;

/// One power iteration: ranks' = d * Aᵀ-normalized walk + (1-d)/n.
/// (We fold the column normalization into the matrix up front.)
fn pagerank(ck: &CompiledKernel, at: &SparseTensor, n: usize, machine: &mut Machine) -> Vec<f64> {
    let mut ranks = vec![1.0 / n as f64; n];
    for _ in 0..ITERS {
        let contrib = run_spmv_f64_with(ck, at, &ranks, machine).expect("SpMV kernel runs");
        let teleport = (1.0 - DAMPING) / n as f64;
        for (r, c) in ranks.iter_mut().zip(&contrib) {
            *r = teleport + DAMPING * c;
        }
    }
    ranks
}

fn main() {
    let n = 250_000;
    let graph = gen::power_law(n, 8, 1.0, 42);
    println!("graph: {} vertices, {} edges", n, graph.nnz());

    // Build A-transpose with out-degree normalization: rank flows along
    // edges, divided by the source's out-degree.
    let deg = graph.row_degrees();
    let mut at = asap::matrices::Triplets::new(n, n);
    for i in 0..graph.nnz() {
        let (src, dst) = (graph.rows[i], graph.cols[i]);
        at.push(dst, src, 1.0 / deg[src].max(1) as f64);
    }
    let sparse = SparseTensor::from_coo(&at.to_coo_f64(), Format::csr());

    let spec = KernelSpec::spmv(ValueKind::F64);
    let cfg = GracemontConfig::scaled();
    let mut report = Vec::new();
    let mut rank_sets = Vec::new();
    for (label, strat, pf) in [
        (
            "baseline",
            PrefetchStrategy::none(),
            PrefetcherConfig::hw_default(),
        ),
        (
            "asap",
            PrefetchStrategy::asap(45),
            PrefetcherConfig::optimized_spmv(),
        ),
    ] {
        let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), &strat)
            .expect("compiles");
        let mut machine = Machine::new(cfg, pf);
        let ranks = pagerank(&ck, &sparse, n, &mut machine);
        let c = machine.counters();
        println!(
            "{label:<9} cycles={:>12}  l2-mpki={:>6.2}  time/iter={:.2} ms",
            c.cycles,
            c.l2_mpki(),
            cfg.cycles_to_seconds(c.cycles) * 1e3 / ITERS as f64,
        );
        report.push(c.cycles);
        rank_sets.push(ranks);
    }

    // Both variants must produce identical ranks.
    let max_diff = rank_sets[0]
        .iter()
        .zip(&rank_sets[1])
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max rank difference baseline vs asap: {max_diff:.2e}");
    assert!(max_diff < 1e-12);

    let speedup = report[0] as f64 / report[1] as f64;
    println!("end-to-end PageRank speedup with ASaP: {speedup:.2}x");

    // Top vertices (hubs of the power-law graph rank highest).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| rank_sets[1][b].total_cmp(&rank_sets[1][a]));
    println!("top-5 vertices by rank: {:?}", &idx[..5]);
}
