//! SpMM with outer-loop prefetching: the paper's Section 5.2 scenario
//! (neural-network-style feature propagation: sparse adjacency × dense
//! feature matrix with one-cache-line rows).
//!
//! Demonstrates the headline contrast of Section 5.3: the Ainsworth &
//! Jones low-level pass emits **zero** prefetches for SpMM because the
//! dependent loads sit in the nested dense loop, while ASaP places the
//! prefetch in the middle (jj) loop from format semantics.
//!
//! ```sh
//! cargo run --release --example spmm_outer_prefetch
//! ```

use asap::core::{compile_with_width, run_spmm_f64_with, PrefetchStrategy};
use asap::ir::print_function;
use asap::matrices::gen;
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{DenseTensor, Format, SparseTensor, ValueKind};

fn main() {
    let n = 120_000;
    let features = 8; // 8 f64 columns = exactly one cache line per row
    let adj = gen::erdos_renyi(n, 8, 9);
    let sparse = SparseTensor::from_coo(&adj.to_coo_f64(), Format::csr());
    let dense = DenseTensor::from_f64(
        vec![n, features],
        (0..n * features).map(|i| (i % 13) as f64 * 0.125).collect(),
    );
    println!(
        "propagating {features} features through a graph of {} edges",
        adj.nnz()
    );

    let spec = KernelSpec::spmm(ValueKind::F64);
    let cfg = GracemontConfig::scaled();
    let pf = PrefetcherConfig::optimized_spmm();
    let mut outputs = Vec::new();
    for strat in [
        PrefetchStrategy::none(),
        PrefetchStrategy::asap(45),
        PrefetchStrategy::aj(45),
    ] {
        let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), &strat)
            .expect("compiles");
        let mut machine = Machine::new(cfg, pf);
        let out = run_spmm_f64_with(&ck, &sparse, &dense, &mut machine).expect("SpMM kernel runs");
        let c = machine.counters();
        println!(
            "{:<16} prefetch-ops={}  sw-prefetches={:>8}  l2-mpki={:>6.2}  cycles={}",
            ck.strategy.label(),
            ck.prefetch_ops,
            c.sw_pf_issued,
            c.l2_mpki(),
            c.cycles
        );
        outputs.push((ck, out));
    }

    // A&J found nothing to instrument; ASaP prefetches once per non-zero.
    assert_eq!(outputs[2].0.prefetch_ops, 0, "A&J must emit no prefetches");
    assert!(outputs[1].0.prefetch_ops > 0);
    // All three agree on the result.
    for (label, (_, out)) in ["baseline", "asap", "aj"].iter().zip(&outputs) {
        assert_eq!(
            out.as_f64(),
            outputs[0].1.as_f64(),
            "{label} output differs"
        );
    }
    println!("all variants agree on the output (checked {n}x{features} values)");

    // Show the middle-loop prefetch in the ASaP IR (Figure 9's comment
    // realized): prefetch C[j_ahead * N] before the k loop.
    let ir = print_function(&outputs[1].0.kernel.func);
    let interesting: Vec<&str> = ir
        .lines()
        .filter(|l| l.contains("prefetch") || l.contains("scf.for"))
        .collect();
    println!("\nloops and prefetches in the ASaP SpMM kernel:");
    for l in interesting {
        println!("  {}", l.trim());
    }
}
