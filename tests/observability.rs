//! Workspace-level observability contracts (DESIGN.md §10):
//!
//! - **Determinism** — two identical fixed-seed runs produce identical
//!   span trees (timestamps excluded by construction) and identical
//!   metrics snapshots. This is what makes traces diffable across CI
//!   runs and what the checkpoint/resume machinery relies on.
//! - **Analyzer goldens** — the prefetch-effectiveness analyzer is
//!   checked against a hand-built event stream with pen-and-paper
//!   expected values, then against a real SpMV run on a hand-built CSR.
//! - **Sink round-trip** — `render_jsonl` output passes
//!   `validate_jsonl`, with the manifest on line 1.
//!
//! The span recorder and metrics registry are process-global, so every
//! test that touches them serializes on `OBS_LOCK`.

use std::sync::Mutex;

use asap::core::{compile_with_width, run_spmv_f64, run_spmv_f64_with, PrefetchStrategy};
use asap::ir::{OpId, TraceEvent, TraceModel};
use asap::matrices::{gen, Triplets};
use asap::obs;
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// One fixed-seed compile + run with the recorder on; returns the
/// timestamp-free span tree and the metrics rendering.
fn traced_run() -> (String, String) {
    obs::reset_all();
    obs::set_enabled(true);
    let tri = gen::erdos_renyi(128, 4, 7);
    let fmt = Format::csr();
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), fmt.clone());
    let spec = KernelSpec::spmv(ValueKind::F64);
    // Deliberately the uncached compile entry point: the process-global
    // compile cache would make run 1 (miss) and run 2 (hit) trace
    // differently, which is a *property of the cache*, not nondeterminism.
    let ck = compile_with_width(
        &spec,
        &fmt,
        sparse.index_width(),
        &PrefetchStrategy::asap(16),
    )
    .expect("compile");
    let x = vec![1.0f64; 128];
    let _y = run_spmv_f64(&ck, &sparse, &x).expect("run");
    obs::set_enabled(false);
    let spans = obs::take_spans();
    let tree = obs::render_span_tree(&spans);
    let metrics = obs::render_metrics(&obs::metrics_snapshot());
    (tree, metrics)
}

#[test]
fn identical_runs_trace_identically() {
    let _g = lock();
    let (tree_a, metrics_a) = traced_run();
    let (tree_b, metrics_b) = traced_run();
    assert!(
        tree_a.contains("compile"),
        "span tree must cover the compile pipeline:\n{tree_a}"
    );
    assert!(
        tree_a.contains("exec"),
        "span tree must cover execution:\n{tree_a}"
    );
    assert_eq!(tree_a, tree_b, "span trees differ between identical runs");
    assert_eq!(
        metrics_a, metrics_b,
        "metrics differ between identical runs"
    );
}

#[test]
fn span_tree_rendering_excludes_timestamps() {
    let _g = lock();
    obs::reset_all();
    obs::set_enabled(true);
    {
        let parent = obs::span("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let _child = obs::span("inner");
        drop(parent);
    }
    obs::set_enabled(false);
    let spans = obs::take_spans();
    let tree = obs::render_span_tree(&spans);
    // The determinism contract: no duration or timestamp digits leak
    // into the comparable rendering (the timed variant exists for
    // humans).
    assert_eq!(tree, "outer\n  inner\n");
}

/// Hand-built event stream, pen-and-paper expectations.
///
/// Site 7 prefetches lines 0 and 1; line 0 is demanded 2 events after
/// its prefetch (useful, distance 2), line 1 never is. Site 9
/// prefetches line 2, demanded 1 event later. The un-prefetched load of
/// line 3 is uncovered. Covered demand loads: line 0 (covered, credits
/// site 7), line 2 (covered, credits site 9), line 0 again (covered,
/// already credited), line 3 (uncovered).
#[test]
fn analyzer_matches_hand_computed_golden() {
    let pc = |n| OpId(n);
    let load = |addr| TraceEvent::Load {
        pc: pc(99),
        addr,
        bytes: 8,
    };
    let pf = |site, addr| TraceEvent::Prefetch {
        pc: pc(site),
        addr,
        locality: 3,
        write: false,
    };
    let mut trace = TraceModel::new();
    trace.events = vec![
        pf(7, 0),     // t=0: site 7 prefetches line 0
        pf(7, 64),    // t=1: site 7 prefetches line 1 (never demanded)
        load(8),      // t=2: line 0 demanded -> site 7 useful, distance 2
        pf(9, 128),   // t=3: site 9 prefetches line 2
        load(130),    // t=4: line 2 demanded -> site 9 useful, distance 1
        load(16),     // t=5: line 0 again -> covered, already credited
        load(64 * 3), // t=6: line 3 -> uncovered demand
    ];
    let eff = obs::analyze(&trace);

    assert_eq!(eff.demand_loads, 4);
    assert_eq!(eff.covered_loads, 3);
    assert!((eff.coverage() - 0.75).abs() < 1e-12);
    assert_eq!(eff.total_issued(), 3);
    assert_eq!(eff.total_useful(), 2);
    assert!((eff.accuracy() - 2.0 / 3.0).abs() < 1e-12);

    assert_eq!(eff.sites.len(), 2, "sites: {:?}", eff.sites);
    let s7 = &eff.sites[0];
    assert_eq!((s7.site, s7.issued, s7.useful), (pc(7), 2, 1));
    assert_eq!(s7.distance_events_sum, 2);
    assert_eq!((s7.min_distance_events, s7.max_distance_events), (2, 2));
    assert!((s7.accuracy() - 0.5).abs() < 1e-12);
    let s9 = &eff.sites[1];
    assert_eq!((s9.site, s9.issued, s9.useful), (pc(9), 1, 1));
    assert_eq!(s9.distance_events_sum, 1);
    // Without counters, timeliness stays in events.
    assert_eq!(eff.cycles_per_event, 0.0);
}

/// End-to-end analyzer check on a hand-built CSR: a 4x4 matrix with a
/// known access pattern, traced through a real ASaP-prefetched SpMV.
#[test]
fn analyzer_on_hand_built_csr_is_deterministic_and_labeled() {
    // row 0: cols 0,2; row 1: col 1; row 2: cols 0,3; row 3: col 3
    let mut tri = Triplets::new(4, 4);
    for &(r, c, v) in &[
        (0, 0, 1.0),
        (0, 2, 2.0),
        (1, 1, 3.0),
        (2, 0, 4.0),
        (2, 3, 5.0),
        (3, 3, 6.0),
    ] {
        tri.push(r, c, v);
    }
    let fmt = Format::csr();
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), fmt.clone());
    let spec = KernelSpec::spmv(ValueKind::F64);
    let ck = compile_with_width(
        &spec,
        &fmt,
        sparse.index_width(),
        &PrefetchStrategy::asap(2),
    )
    .expect("compile");
    let x = vec![1.0, 2.0, 3.0, 4.0];

    let run = || {
        let mut trace = TraceModel::new();
        let y = run_spmv_f64_with(&ck, &sparse, &x, &mut trace).expect("run");
        (y, obs::analyze(&trace), trace.events.len())
    };
    let (y, eff, n_events) = run();
    let (y2, eff2, n2) = run();

    // Functional result is right...
    let expect = tri.dense_spmv(&x);
    for (a, b) in y.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-9, "{y:?} vs {expect:?}");
    }
    // ...the trace and analysis are run-to-run deterministic...
    assert_eq!(y, y2);
    assert_eq!(n_events, n2);
    assert_eq!(eff, eff2, "effectiveness differs between identical runs");
    // ...and internally consistent.
    assert!(eff.demand_loads > 0);
    assert!(eff.covered_loads <= eff.demand_loads);
    assert!(!eff.sites.is_empty(), "ASaP must inject prefetch sites");
    for s in &eff.sites {
        assert!(s.useful <= s.issued, "site {:?}", s.site);
    }
    assert!(eff.sites.windows(2).all(|w| w[0].site.0 < w[1].site.0));
    // Every analyzed site maps back to a named kernel construct.
    let labels = obs::site_labels(&ck.kernel);
    for s in &eff.sites {
        let label = labels.get(&s.site);
        assert!(label.is_some(), "unlabeled site {:?}", s.site);
        assert_ne!(label.unwrap(), "local");
    }
}

#[test]
fn jsonl_sink_roundtrips_through_its_own_validator() {
    let _g = lock();
    obs::reset_all();
    obs::set_enabled(true);
    {
        let span = obs::span_with("work", || vec![("kind", "test".to_string())]);
        span.attr("items", 3);
        obs::counter_inc("test.counter");
        obs::histogram_record("test.hist", 1000);
    }
    obs::set_enabled(false);
    let spans = obs::take_spans();
    let metrics = obs::metrics_snapshot();
    let manifest = obs::RunManifest::new("observability-test").with("seed", 7);
    let text = obs::render_jsonl(&manifest, &spans, &metrics, None);
    let lines = obs::validate_jsonl(&text).expect("sink output must validate");
    // Manifest line + at least one span line + metric lines.
    assert!(lines >= 3, "unexpectedly small JSONL ({lines} lines)");
    let first = text.lines().next().expect("non-empty");
    assert!(
        first.contains("\"manifest\"") || first.contains("\"tool\""),
        "manifest must be the first line: {first}"
    );
}
