//! Request-scoped telemetry contracts for the `asap-serve` daemon
//! (DESIGN.md §15): every response carries a unique `X-Asap-Trace`,
//! anomalous requests are reconstructable from `/debug/trace/<id>` with
//! per-stage timings that account for their wall time, the flight
//! recorder stays bounded under churn, `/metrics` exposes the labeled
//! stage histograms with exemplars, and the optional access log writes
//! one parseable JSONL line per completed request.
//!
//! Every test starts a real server on an ephemeral loopback port and
//! talks HTTP over TCP, because the contracts live at the edges: the
//! header is stamped where the response bytes are written, and the
//! flight recorder is fed from the worker that owned the request.

use asap_obs::ObjWriter;
use asap_serve::{exchange_with_headers, get, post, ServeConfig, Server};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("server starts on ephemeral port")
}

fn run_body(deadline_ms: Option<u64>) -> String {
    let mut w = ObjWriter::new();
    w.str("kernel", "spmv")
        .str("matrix", "gen:er:256:4")
        .str("strategy", "baseline");
    if let Some(d) = deadline_ms {
        w.u64("deadline_ms", d);
    }
    w.finish()
}

fn assert_trace_hex(t: &str) {
    assert_eq!(t.len(), 32, "trace id is 128 bits as 32 hex chars: {t:?}");
    assert!(
        t.chars().all(|c| c.is_ascii_hexdigit()),
        "trace id is hex: {t:?}"
    );
}

#[test]
fn every_response_carries_a_unique_trace_header() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    // One of each response class the router can produce from outside:
    // 200 (valid run), 400 (unparseable body), 404 (unknown route).
    let ok = post(addr, "/v1/run", &run_body(None), TIMEOUT).expect("transport ok");
    assert_eq!(ok.status, 200, "{}", ok.body);
    let bad = post(addr, "/v1/run", "this is not json", TIMEOUT).expect("transport ok");
    assert_eq!(bad.status, 400, "{}", bad.body);
    let lost = get(addr, "/no/such/route", TIMEOUT).expect("transport ok");
    assert_eq!(lost.status, 404, "{}", lost.body);

    let mut seen = Vec::new();
    for reply in [&ok, &bad, &lost] {
        let t = reply
            .trace()
            .unwrap_or_else(|| panic!("status {} lacks X-Asap-Trace", reply.status))
            .to_string();
        assert_trace_hex(&t);
        assert!(!seen.contains(&t), "duplicate trace id {t}");
        seen.push(t);
    }

    // The 200 body's own trace field agrees with the header, so a
    // client can correlate stored results with server-side telemetry.
    let v = asap_obs::parse_json(&ok.body).expect("200 body is json");
    assert_eq!(
        v.get("trace").and_then(|t| t.as_str()),
        ok.trace(),
        "body trace must match the response header"
    );
    server.join();
}

#[test]
fn telemetry_off_strips_the_trace_plane() {
    let server = start(ServeConfig {
        telemetry: false,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let ok = post(addr, "/v1/run", &run_body(None), TIMEOUT).expect("transport ok");
    assert_eq!(ok.status, 200, "{}", ok.body);
    assert!(ok.trace().is_none(), "telemetry off must not stamp traces");
    let v = asap_obs::parse_json(&ok.body).expect("200 body is json");
    assert!(v.get("trace").is_none(), "no trace field when disabled");
    assert!(v.get("stage_ns").is_none(), "no stage_ns when disabled");
    server.join();
}

/// A request shed for a lapsed deadline is an anomaly, so its full
/// stage breakdown must be reconstructable from `/debug/trace/<id>`:
/// 504, anomaly `shed`, queue-wait dominated, and the attributed stage
/// sum within timer skew of the recorded wall time.
#[test]
fn shed_request_is_reconstructable_via_debug_trace() {
    // One worker, 250 ms per job (the pattern from the tenancy suite):
    // a burst of long- and 40 ms-deadline requests serializes behind
    // it, so the short ones are parsed, queued, and expire in the lane.
    let server = start(ServeConfig {
        workers: 1,
        worker_delay_ms: 250,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let warm = post(addr, "/v1/run", &run_body(None), TIMEOUT).expect("transport ok");
    assert_eq!(warm.status, 200, "warmup: {}", warm.body);

    let shorts = std::thread::scope(|s| {
        let longs: Vec<_> = (0..3)
            .map(|_| s.spawn(move || post(addr, "/v1/run", &run_body(None), TIMEOUT)))
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        let shorts: Vec<_> = (0..3)
            .map(|_| s.spawn(move || post(addr, "/v1/run", &run_body(Some(40)), TIMEOUT)))
            .collect();
        for h in longs {
            let r = h.join().unwrap().expect("transport ok");
            assert_eq!(r.status, 200, "long-deadline request: {}", r.body);
        }
        shorts
            .into_iter()
            .map(|h| h.join().unwrap().expect("transport ok"))
            .collect::<Vec<_>>()
    });
    // At most one short may trap in the budget meter mid-execution; at
    // least one must be shed at pop. Reconstruct that one.
    let shed = shorts
        .iter()
        .find(|r| {
            r.status == 504
                && asap_obs::parse_json(&r.body)
                    .ok()
                    .and_then(|v| v.get("kind").and_then(|k| k.as_str().map(str::to_string)))
                    .as_deref()
                    == Some("shed")
        })
        .expect("at least one short-deadline request is shed at pop");

    let id = shed.trace().expect("504 carries a trace").to_string();
    let reply = get(addr, &format!("/debug/trace/{id}"), TIMEOUT).expect("transport ok");
    assert_eq!(
        reply.status, 200,
        "anomaly must be retained: {}",
        reply.body
    );
    let v = asap_obs::parse_json(&reply.body).expect("trace record is json");
    assert_eq!(v.get("trace").and_then(|t| t.as_str()), Some(id.as_str()));
    assert_eq!(v.get("status").and_then(|s| s.as_u64()), Some(504));
    assert_eq!(v.get("anomaly").and_then(|a| a.as_str()), Some("shed"));
    let total = v
        .get("total_ns")
        .and_then(|t| t.as_u64())
        .expect("total_ns");
    let stages = v.get("stage_ns").expect("stage_ns object");
    let queue_wait = stages
        .get("queue_wait")
        .and_then(|q| q.as_u64())
        .expect("queue_wait");
    let sum: u64 = asap_obs::STAGES
        .iter()
        .filter_map(|s| stages.get(s.label()).and_then(|n| n.as_u64()))
        .sum();
    assert!(
        queue_wait >= 10_000_000,
        "a shed request's time is queue wait; got {queue_wait} ns"
    );
    assert!(
        sum <= total + 5_000_000,
        "stage sum {sum} ns must not exceed wall time {total} ns (plus skew)"
    );
    assert!(
        sum * 2 >= total,
        "stage sum {sum} ns should account for most of wall time {total} ns"
    );

    // An unknown (but well-formed) id is a 404, not a 500.
    let missing = get(
        addr,
        "/debug/trace/00000000000000000000000000000000",
        TIMEOUT,
    )
    .expect("transport ok");
    assert_eq!(missing.status, 404, "{}", missing.body);
    server.join();
}

#[test]
fn panic_is_promoted_and_listed_in_debug_requests() {
    let server = start(ServeConfig {
        enable_fault_endpoints: true,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let reply = post(addr, "/debug/panic", "", TIMEOUT).expect("transport ok");
    assert_eq!(reply.status, 500, "{}", reply.body);
    let id = reply.trace().expect("500 carries a trace").to_string();

    let rec = get(addr, &format!("/debug/trace/{id}"), TIMEOUT).expect("transport ok");
    assert_eq!(rec.status, 200, "panic must be retained: {}", rec.body);
    let v = asap_obs::parse_json(&rec.body).expect("trace record is json");
    assert_eq!(v.get("anomaly").and_then(|a| a.as_str()), Some("panic"));

    let dump = get(addr, "/debug/requests", TIMEOUT).expect("transport ok");
    assert_eq!(dump.status, 200);
    assert!(
        dump.body.contains(&id),
        "flight dump must list the panicked request"
    );
    server.join();
}

/// The flight recorder is fixed-size: per-worker rings plus a bounded
/// retained set. A churn of successful requests can never grow the
/// `/debug/requests` dump past `retain + rings * ring_cap` lines.
#[test]
fn flight_recorder_stays_bounded_under_churn() {
    let workers = 2;
    let (ring_cap, retain_cap) = (4, 8);
    let server = start(ServeConfig {
        workers,
        flight_ring: ring_cap,
        flight_retain: retain_cap,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = run_body(None);
    for i in 0..60 {
        let reply = post(addr, "/v1/run", &body, TIMEOUT).expect("transport ok");
        assert_eq!(reply.status, 200, "request {i}: {}", reply.body);
    }
    let dump = get(addr, "/debug/requests", TIMEOUT).expect("transport ok");
    assert_eq!(dump.status, 200);
    let lines: Vec<&str> = dump.body.lines().filter(|l| !l.is_empty()).collect();
    let bound = retain_cap + (workers + 1) * ring_cap;
    assert!(
        !lines.is_empty() && lines.len() <= bound,
        "dump has {} lines; bound is {bound}",
        lines.len()
    );
    for line in lines {
        let v = asap_obs::parse_json(line).expect("every dump line is json");
        assert!(v.get("trace").and_then(|t| t.as_str()).is_some());
    }
    server.join();
}

#[test]
fn metrics_exposes_stage_histograms_with_exemplars_and_slo_counters() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    for _ in 0..5 {
        let reply = post(addr, "/v1/run", &run_body(None), TIMEOUT).expect("transport ok");
        assert_eq!(reply.status, 200, "{}", reply.body);
    }
    let metrics = get(addr, "/metrics", TIMEOUT).expect("transport ok");
    assert_eq!(metrics.status, 200);
    for needle in [
        "serve.stage_ns{stage=\"exec\",tenant=\"default\"}",
        "serve.stage_ns{stage=\"parse\",tenant=\"default\"}",
        "serve.request_ns{tenant=\"default\"}",
        "serve.slo.under{objective_ms=\"250\",tenant=\"default\"}",
        "exemplars=[",
    ] {
        assert!(
            metrics.body.contains(needle),
            "/metrics lacks {needle}:\n{}",
            metrics.body
        );
    }
    server.join();
}

#[test]
fn access_log_writes_one_jsonl_line_per_request() {
    let path = std::env::temp_dir().join(format!(
        "asap-serve-access-{}-{:x}.jsonl",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    let server = start(ServeConfig {
        access_log: Some(path.clone()),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let mut traces = Vec::new();
    for _ in 0..4 {
        let reply = post(addr, "/v1/run", &run_body(None), TIMEOUT).expect("transport ok");
        assert_eq!(reply.status, 200, "{}", reply.body);
        traces.push(reply.trace().expect("trace header").to_string());
    }
    let lost = get(addr, "/no/such/route", TIMEOUT).expect("transport ok");
    assert_eq!(lost.status, 404);
    traces.push(lost.trace().expect("trace header").to_string());
    // Joining drains in-flight work, so every completion has flushed
    // its line before we read the file.
    server.join();

    let log = std::fs::read_to_string(&path).expect("access log exists");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = log.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 5, "one line per completed request:\n{log}");
    let logged: Vec<String> = lines
        .iter()
        .map(|l| {
            let v = asap_obs::parse_json(l).expect("access line is json");
            assert!(v.get("status").and_then(|s| s.as_u64()).is_some());
            assert!(v.get("stage_ns").is_some());
            v.get("trace")
                .and_then(|t| t.as_str())
                .expect("trace field")
                .to_string()
        })
        .collect();
    for t in &traces {
        assert!(logged.contains(t), "trace {t} missing from access log");
    }
}

/// `exchange_with_headers` is in the public client API; use it so the
/// tenant label on the stage histograms is covered end to end.
#[test]
fn stage_histograms_are_labeled_per_tenant() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let reply = exchange_with_headers(
        addr,
        "POST",
        "/v1/run",
        &[("X-Asap-Tenant", "obs-tenant")],
        &run_body(None),
        TIMEOUT,
    )
    .expect("transport ok");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let metrics = get(addr, "/metrics", TIMEOUT).expect("transport ok");
    assert!(
        metrics
            .body
            .contains("serve.stage_ns{stage=\"exec\",tenant=\"obs-tenant\"}"),
        "per-tenant stage histogram missing:\n{}",
        metrics.body
    );
    server.join();
}
