//! Property-based invariants of the execution-driven simulator and the
//! full pipeline: prefetching strategies must never change results,
//! counters must be internally consistent, and runs must be deterministic.
//!
//! Properties are checked over fixed-seed random cases drawn with the
//! in-tree [`Rng64`] (the workspace builds without network access, so
//! there is no external property-testing crate). Every case is
//! reproducible from its seed, which each assertion message carries.

use asap::core::{compile_with_width, PrefetchStrategy};
use asap::matrices::{Rng64, Triplets};
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};

/// Random square matrix: up to `max_n` rows, up to `max_entries`
/// (row, col, value) triplets — duplicates and empty rows included.
fn random_triplets(rng: &mut Rng64, max_n: usize, max_entries: usize) -> Triplets {
    let n = rng.gen_range(2..=max_n);
    let entries = rng.gen_range(1..max_entries);
    let mut t = Triplets::new(n, n);
    for _ in 0..entries {
        t.push(
            rng.usize_below(n),
            rng.usize_below(n),
            rng.gen_range(0.1..2.0),
        );
    }
    t
}

/// Random hardware-prefetcher on/off configuration.
fn random_pf(rng: &mut Rng64) -> PrefetcherConfig {
    PrefetcherConfig {
        l1_nlp: rng.gen_bool(0.5),
        l1_ipp: rng.gen_bool(0.5),
        l2_nlp: rng.gen_bool(0.5),
        mlc_streamer: rng.gen_bool(0.5),
        l2_amp: rng.gen_bool(0.5),
        llc_streamer: rng.gen_bool(0.5),
    }
}

fn run_simulated(
    tri: &Triplets,
    strat: &PrefetchStrategy,
    pf: PrefetcherConfig,
) -> (Vec<f64>, asap::sim::Counters) {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let ck = compile_with_width(&spec, &Format::csr(), sparse.index_width(), strat).unwrap();
    let x: Vec<f64> = (0..tri.ncols).map(|i| 1.0 + (i % 4) as f64).collect();
    let mut m = Machine::new(GracemontConfig::scaled(), pf);
    let y = asap::core::run_spmv_f64_with(&ck, &sparse, &x, &mut m).unwrap();
    (y, m.counters())
}

/// Prefetch strategy and hardware-prefetcher configuration are pure
/// performance knobs: results must be bit-identical.
#[test]
fn prefetching_never_changes_results() {
    for seed in 0..24u64 {
        let mut rng = Rng64::seed_from_u64(seed);
        let tri = random_triplets(&mut rng, 64, 200);
        let pf = random_pf(&mut rng);
        let distance = rng.gen_range(1..128usize);
        let (y0, _) = run_simulated(&tri, &PrefetchStrategy::none(), PrefetcherConfig::all_off());
        for strat in [
            PrefetchStrategy::asap(distance),
            PrefetchStrategy::aj(distance),
        ] {
            let (y, _) = run_simulated(&tri, &strat, pf);
            assert_eq!(y, y0, "seed {seed}, {}", strat.label());
        }
    }
}

/// PMU-style counter consistency.
#[test]
fn counters_are_consistent() {
    for seed in 0..24u64 {
        let mut rng = Rng64::seed_from_u64(seed ^ 0x5eed);
        let tri = random_triplets(&mut rng, 64, 200);
        let pf = random_pf(&mut rng);
        let (_, c) = run_simulated(&tri, &PrefetchStrategy::asap(16), pf);
        // Every demand access classifies at L1.
        assert_eq!(c.l1_hits + c.l1_misses, c.loads + c.stores, "seed {seed}");
        // L1 misses cascade down the hierarchy.
        assert_eq!(c.l2_hits + c.l2_misses, c.l1_misses, "seed {seed}");
        assert_eq!(c.l3_hits + c.dram_hits, c.l2_misses, "seed {seed}");
        // The paper's L2-miss PMU approximation.
        assert_eq!(c.l2_miss_events(), c.l3_hits + c.dram_hits, "seed {seed}");
        // Prefetch accounting: outcomes never exceed issues.
        assert!(
            c.sw_pf_dropped + c.sw_pf_redundant <= c.sw_pf_issued,
            "seed {seed}"
        );
        assert!(
            c.hw_pf_dropped + c.hw_pf_redundant <= c.hw_pf_issued,
            "seed {seed}"
        );
        // Cycles include all stalls; instructions ran.
        assert!(c.cycles >= c.stall_cycles, "seed {seed}");
        assert!(c.instructions > 0, "seed {seed}");
    }
}

/// Simulation is deterministic: identical inputs, identical counters.
#[test]
fn simulation_is_deterministic() {
    for seed in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let tri = random_triplets(&mut rng, 48, 150);
        let a = run_simulated(
            &tri,
            &PrefetchStrategy::asap(8),
            PrefetcherConfig::hw_default(),
        );
        let b = run_simulated(
            &tri,
            &PrefetchStrategy::asap(8),
            PrefetcherConfig::hw_default(),
        );
        assert_eq!(a.1, b.1, "seed {seed}");
        assert_eq!(a.0, b.0, "seed {seed}");
    }
}

/// ASaP issues exactly two software prefetches per non-zero for SpMV
/// (Step 1 + Step 3).
#[test]
fn asap_prefetch_volume_bounds() {
    for seed in 0..12u64 {
        let mut rng = Rng64::seed_from_u64(seed | 0xa000);
        let tri = random_triplets(&mut rng, 64, 200);
        let (_, c) = run_simulated(
            &tri,
            &PrefetchStrategy::asap(8),
            PrefetcherConfig::all_off(),
        );
        let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
        let nnz = sparse.nnz() as u64;
        assert_eq!(c.sw_pf_issued, 2 * nnz, "seed {seed}");
    }
}

/// Multi-core determinism of *results* (counters may vary slightly with
/// thread interleaving through shared-resource timing, but outputs and
/// work counters must not).
#[test]
fn multicore_work_is_stable() {
    use asap_bench::{run_spmv_threads, Variant};
    let tri = asap::matrices::gen::erdos_renyi(8_000, 6, 21);
    let r1 = run_spmv_threads(
        &tri,
        "t",
        "g",
        true,
        Variant::Asap { distance: 16 },
        PrefetcherConfig::hw_default(),
        "hw",
        GracemontConfig::scaled(),
        3,
    )
    .unwrap();
    let r2 = run_spmv_threads(
        &tri,
        "t",
        "g",
        true,
        Variant::Asap { distance: 16 },
        PrefetcherConfig::hw_default(),
        "hw",
        GracemontConfig::scaled(),
        3,
    )
    .unwrap();
    assert_eq!(r1.instructions, r2.instructions, "work is deterministic");
    assert_eq!(r1.sw_pf_issued, r2.sw_pf_issued);
    // Timing may drift across runs only within the clock-sync quantum's
    // influence on shared-resource contention.
    let drift = (r1.cycles as f64 - r2.cycles as f64).abs() / r1.cycles as f64;
    assert!(drift < 0.1, "cycle drift {drift:.3} too large");
}
