//! Property-based invariants of the execution-driven simulator and the
//! full pipeline: prefetching strategies must never change results,
//! counters must be internally consistent, and runs must be deterministic.

use asap::core::{compile_with_width, PrefetchStrategy};
use asap::matrices::Triplets;
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{Format, SparseTensor, ValueKind};
use proptest::prelude::*;

fn triplets_strategy(max_n: usize, max_entries: usize) -> impl Strategy<Value = Triplets> {
    (2usize..=max_n)
        .prop_flat_map(move |n| {
            let entry = (0..n, 0..n, 0.1f64..2.0);
            (
                Just(n),
                proptest::collection::vec(entry, 1..max_entries),
            )
        })
        .prop_map(|(n, entries)| {
            let mut t = Triplets::new(n, n);
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            t
        })
}

fn pf_strategy() -> impl Strategy<Value = PrefetcherConfig> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(a, b, c, d, e, f)| PrefetcherConfig {
            l1_nlp: a,
            l1_ipp: b,
            l2_nlp: c,
            mlc_streamer: d,
            l2_amp: e,
            llc_streamer: f,
        },
    )
}

fn run_simulated(
    tri: &Triplets,
    strat: &PrefetchStrategy,
    pf: PrefetcherConfig,
) -> (Vec<f64>, asap::sim::Counters) {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let ck = compile_with_width(&spec, &Format::csr(), sparse.index_width(), strat).unwrap();
    let x: Vec<f64> = (0..tri.ncols).map(|i| 1.0 + (i % 4) as f64).collect();
    let mut m = Machine::new(GracemontConfig::scaled(), pf);
    let y = asap::core::run_spmv_f64_with(&ck, &sparse, &x, &mut m);
    (y, m.counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Prefetch strategy and hardware-prefetcher configuration are pure
    /// performance knobs: results must be bit-identical.
    #[test]
    fn prefetching_never_changes_results(
        tri in triplets_strategy(64, 200),
        pf in pf_strategy(),
        distance in 1usize..128,
    ) {
        let (y0, _) = run_simulated(&tri, &PrefetchStrategy::none(), PrefetcherConfig::all_off());
        for strat in [PrefetchStrategy::asap(distance), PrefetchStrategy::aj(distance)] {
            let (y, _) = run_simulated(&tri, &strat, pf);
            prop_assert_eq!(&y, &y0);
        }
    }

    /// PMU-style counter consistency.
    #[test]
    fn counters_are_consistent(
        tri in triplets_strategy(64, 200),
        pf in pf_strategy(),
    ) {
        let (_, c) = run_simulated(&tri, &PrefetchStrategy::asap(16), pf);
        // Every demand access classifies at L1.
        prop_assert_eq!(c.l1_hits + c.l1_misses, c.loads + c.stores);
        // L1 misses cascade down the hierarchy.
        prop_assert_eq!(c.l2_hits + c.l2_misses, c.l1_misses);
        prop_assert_eq!(c.l3_hits + c.dram_hits, c.l2_misses);
        // The paper's L2-miss PMU approximation.
        prop_assert_eq!(c.l2_miss_events(), c.l3_hits + c.dram_hits);
        // Prefetch accounting: outcomes never exceed issues.
        prop_assert!(c.sw_pf_dropped + c.sw_pf_redundant <= c.sw_pf_issued);
        prop_assert!(c.hw_pf_dropped + c.hw_pf_redundant <= c.hw_pf_issued);
        // Cycles include all stalls; instructions ran.
        prop_assert!(c.cycles >= c.stall_cycles);
        prop_assert!(c.instructions > 0);
    }

    /// Simulation is deterministic: identical inputs, identical counters.
    #[test]
    fn simulation_is_deterministic(tri in triplets_strategy(48, 150)) {
        let a = run_simulated(&tri, &PrefetchStrategy::asap(8), PrefetcherConfig::hw_default());
        let b = run_simulated(&tri, &PrefetchStrategy::asap(8), PrefetcherConfig::hw_default());
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.0, b.0);
    }

    /// ASaP issues at most two software prefetches per non-zero for SpMV
    /// (Step 1 + Step 3) and at least one per non-zero.
    #[test]
    fn asap_prefetch_volume_bounds(tri in triplets_strategy(64, 200)) {
        let (_, c) = run_simulated(&tri, &PrefetchStrategy::asap(8), PrefetcherConfig::all_off());
        let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
        let nnz = sparse.nnz() as u64;
        prop_assert_eq!(c.sw_pf_issued, 2 * nnz);
    }
}

/// Multi-core determinism of *results* (counters may vary slightly with
/// thread interleaving through shared-resource timing, but outputs and
/// work counters must not).
#[test]
fn multicore_work_is_stable() {
    use asap_bench::{run_spmv_threads, Variant};
    let tri = asap::matrices::gen::erdos_renyi(8_000, 6, 21);
    let r1 = run_spmv_threads(
        &tri, "t", "g", true,
        Variant::Asap { distance: 16 },
        PrefetcherConfig::hw_default(),
        "hw",
        GracemontConfig::scaled(),
        3,
    );
    let r2 = run_spmv_threads(
        &tri, "t", "g", true,
        Variant::Asap { distance: 16 },
        PrefetcherConfig::hw_default(),
        "hw",
        GracemontConfig::scaled(),
        3,
    );
    assert_eq!(r1.instructions, r2.instructions, "work is deterministic");
    assert_eq!(r1.sw_pf_issued, r2.sw_pf_issued);
    // Timing may drift across runs only within the clock-sync quantum's
    // influence on shared-resource contention.
    let drift = (r1.cycles as f64 - r2.cycles as f64).abs() / r1.cycles as f64;
    assert!(drift < 0.1, "cycle drift {drift:.3} too large");
}
