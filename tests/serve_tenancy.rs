//! Tenant isolation, memory-bounded residency, and deadline shedding
//! contracts for the `asap-serve` daemon (DESIGN.md §14).
//!
//! Every test starts a real server on an ephemeral loopback port and
//! talks HTTP over actual TCP, because the behaviors under test live in
//! the admission path between the socket and the worker pool:
//!
//! - **Fair queueing** — a paced victim tenant keeps its solo goodput
//!   (within 30%) while an aggressor floods the server from a dozen
//!   connections; the aggressor, not the victim, eats per-tenant 429s.
//! - **Bounded residency** — a burst of distinct inline matrices can
//!   never push the resident store past its byte ceiling; an inline
//!   matrix bigger than a shard is a typed 413, not an allocation.
//! - **Deadline shedding** — a request whose deadline expired while it
//!   sat in the queue is answered 504/`shed` the moment a worker pops
//!   it, without paying the service time it can no longer use.
//! - **Token buckets** — one tenant burning through its request quota
//!   gets 429 + `Retry-After`; a neighbor tenant is untouched.
//! - **Store reuse** — re-POSTing the same inline matrix is a
//!   `store_hit`, the mechanism behind the warm-store speedup gate in
//!   `BENCH_serve_tenancy.json`.
//! - **Brownout** — under queue pressure the server refuses expensive
//!   inline-matrix requests (429/`brownout`) while named-matrix
//!   requests still flow.
//!
//! Timing-sensitive tests pace work in hundreds of milliseconds against
//! service times of tens, so scheduler jitter on a loaded CI box stays
//! an order of magnitude below every asserted margin.

use asap_matrices::{gen, write_matrix_market};
use asap_obs::ObjWriter;
use asap_serve::{exchange_with_headers, get, post, ServeConfig, Server};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("server starts on ephemeral port")
}

fn field(body: &str, key: &str) -> Option<String> {
    let v = asap_obs::parse_json(body).ok()?;
    let f = v.get(key)?;
    f.as_str()
        .map(str::to_string)
        .or_else(|| f.as_u64().map(|n| n.to_string()))
        .or_else(|| f.as_bool().map(|b| b.to_string()))
}

/// POST `/v1/run` as a named tenant.
fn post_as(
    addr: std::net::SocketAddr,
    tenant: &str,
    body: &str,
) -> std::io::Result<asap_serve::HttpReply> {
    exchange_with_headers(
        addr,
        "POST",
        "/v1/run",
        &[("X-Asap-Tenant", tenant)],
        body,
        TIMEOUT,
    )
}

fn named_body(deadline_ms: Option<u64>) -> String {
    let mut w = ObjWriter::new();
    w.str("kernel", "spmv")
        .str("matrix", "gen:er:256:4")
        .str("strategy", "baseline");
    if let Some(d) = deadline_ms {
        w.u64("deadline_ms", d);
    }
    w.finish()
}

/// A request body carrying a freshly generated inline MatrixMarket
/// payload; distinct seeds give distinct content digests.
fn inline_body(n: usize, deg: usize, seed: u64) -> String {
    let tri = gen::erdos_renyi(n, deg, seed);
    let mut mtx = Vec::new();
    write_matrix_market(&tri, &mut mtx).expect("render mtx");
    let mut w = ObjWriter::new();
    w.str("kernel", "spmv")
        .str("mtx", &String::from_utf8(mtx).expect("ascii mtx"))
        .str("strategy", "baseline");
    w.finish()
}

/// Send `n` requests as `tenant`, open-loop paced at `interval` (the
/// schedule does not slow down when the server does — the CO-aware
/// framing from the load harness). Returns total elapsed; panics on any
/// non-200.
fn paced_run(
    addr: std::net::SocketAddr,
    tenant: &str,
    body: &str,
    n: usize,
    interval: Duration,
) -> Duration {
    let start = Instant::now();
    for i in 0..n {
        let at = interval * i as u32;
        let now = start.elapsed();
        if now < at {
            std::thread::sleep(at - now);
        }
        let reply = post_as(addr, tenant, body).expect("transport ok");
        assert_eq!(reply.status, 200, "paced request {i}: {}", reply.body);
    }
    start.elapsed()
}

#[test]
fn paced_victim_keeps_goodput_while_aggressor_floods() {
    let server = start(ServeConfig {
        workers: 1,
        worker_delay_ms: 10,
        tenant_queue_bound: 4,
        queue_bound: 64,
        job_bound: 64,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = named_body(None);

    // Warm compile + matrix build so both measured phases are steady-state.
    let warm = post_as(addr, "victim", &body).expect("transport ok");
    assert_eq!(warm.status, 200, "warmup: {}", warm.body);

    // Solo baseline: the victim alone, paced at 40 ms — a demand of
    // 25/s against a ~100 jobs/s worker, so even half the capacity (its
    // fair share against one aggressor) covers it with room for the
    // worst-case DRR wait (one in-progress job plus one hog quantum).
    let solo = paced_run(addr, "victim", &body, 16, Duration::from_millis(40));

    // Contended: a dozen aggressor connections keep the hog lane
    // saturated past its 4-slot bound for the whole victim run.
    let stop = Arc::new(AtomicBool::new(false));
    let hog_429 = Arc::new(AtomicU64::new(0));
    let hog_5xx = Arc::new(AtomicU64::new(0));
    let contended = std::thread::scope(|s| {
        for _ in 0..12 {
            let stop = stop.clone();
            let hog_429 = hog_429.clone();
            let hog_5xx = hog_5xx.clone();
            let body = body.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match post_as(addr, "hog", &body) {
                        Ok(r) if r.status == 429 => {
                            hog_429.fetch_add(1, Ordering::Relaxed);
                            // The bounce is immediate; don't spin the
                            // conn queue full of instant retries.
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Ok(r) if r.status >= 500 => {
                            hog_5xx.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                }
            });
        }
        let elapsed = paced_run(addr, "victim", &body, 16, Duration::from_millis(40));
        stop.store(true, Ordering::Relaxed);
        elapsed
    });

    // The acceptance bar is 70% of solo goodput; deficit round-robin
    // should land the victim far above it (its lane is short, so it
    // waits for at most one hog quantum per request).
    let solo_rate = 16.0 / solo.as_secs_f64();
    let contended_rate = 16.0 / contended.as_secs_f64();
    assert!(
        contended_rate >= 0.7 * solo_rate,
        "victim degraded past the fairness floor: solo {solo_rate:.1}/s, \
         contended {contended_rate:.1}/s"
    );
    // Backpressure landed on the aggressor's lane, and overload never
    // became a server error.
    assert!(
        hog_429.load(Ordering::Relaxed) > 0,
        "aggressor saw no per-tenant 429s despite a 4-slot lane bound"
    );
    assert_eq!(hog_5xx.load(Ordering::Relaxed), 0, "overload must not 5xx");

    server.join();
}

#[test]
fn store_never_exceeds_ceiling_under_inline_chaos() {
    // A deliberately tiny store: 8 shards x 64 KiB. The small inline
    // matrices (~10-20 KiB resident) fit; the big one cannot.
    let server = start(ServeConfig {
        workers: 2,
        store_bytes: 8 * 64 * 1024,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let ceiling_ok = Arc::new(AtomicBool::new(true));
    std::thread::scope(|s| {
        // Four tenants churn distinct small matrices — far more bytes in
        // aggregate than the ceiling, so eviction must be doing the work.
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..8u64 {
                    let body = inline_body(128, 4, 1000 * t + i);
                    let reply = post_as(addr, &format!("t{t}"), &body).expect("transport ok");
                    assert!(
                        reply.status == 200 || reply.status == 429,
                        "small inline got {}: {}",
                        reply.status,
                        reply.body
                    );
                }
            });
        }
        // An adversary posts matrices bigger than a shard: typed 413,
        // never resident, never an allocation the ceiling can't cover.
        s.spawn(move || {
            for i in 0..3u64 {
                let body = inline_body(4096, 8, 77 + i);
                let reply = post_as(addr, "adversary", &body).expect("transport ok");
                assert_eq!(reply.status, 413, "oversized inline: {}", reply.body);
                assert_eq!(field(&reply.body, "kind").as_deref(), Some("store"));
            }
        });
        // Sample the occupancy while the churn runs.
        let ceiling_ok = ceiling_ok.clone();
        s.spawn(move || {
            for _ in 0..20 {
                let h = get(addr, "/healthz", TIMEOUT).expect("healthz");
                let bytes: u64 = field(&h.body, "store_bytes").unwrap().parse().unwrap();
                let ceiling: u64 = field(&h.body, "store_ceiling").unwrap().parse().unwrap();
                if bytes > ceiling {
                    ceiling_ok.store(false, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
    });
    assert!(
        ceiling_ok.load(Ordering::Relaxed),
        "resident bytes exceeded the store ceiling during inline churn"
    );

    // Quiesced: still bounded, and the churn left something resident.
    let h = get(addr, "/healthz", TIMEOUT).expect("healthz");
    let bytes: u64 = field(&h.body, "store_bytes").unwrap().parse().unwrap();
    let ceiling: u64 = field(&h.body, "store_ceiling").unwrap().parse().unwrap();
    let entries: u64 = field(&h.body, "store_entries").unwrap().parse().unwrap();
    assert!(
        bytes <= ceiling,
        "{bytes} resident bytes over ceiling {ceiling}"
    );
    assert!(entries > 0, "churn should leave matrices resident");

    server.join();
}

#[test]
fn expired_deadline_is_shed_without_occupying_a_worker() {
    // One worker, 250 ms per job. A burst of 3 long-deadline and 3
    // 40 ms-deadline requests serializes behind it: every short request
    // not popped within 40 ms of its submission has expired in the lane.
    const DELAY_MS: u64 = 250;
    let server = start(ServeConfig {
        workers: 1,
        worker_delay_ms: DELAY_MS,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Warm compile + matrix so the measured burst is pure service time.
    let warm = post(addr, "/v1/run", &named_body(None), TIMEOUT).expect("transport ok");
    assert_eq!(warm.status, 200, "warmup: {}", warm.body);

    let started = Instant::now();
    let (longs, shorts) = std::thread::scope(|s| {
        let longs: Vec<_> = (0..3)
            .map(|_| s.spawn(move || post(addr, "/v1/run", &named_body(None), TIMEOUT)))
            .collect();
        let shorts: Vec<_> = (0..3)
            .map(|_| s.spawn(move || post(addr, "/v1/run", &named_body(Some(40)), TIMEOUT)))
            .collect();
        fn collect(
            hs: Vec<std::thread::ScopedJoinHandle<'_, std::io::Result<asap_serve::HttpReply>>>,
        ) -> Vec<asap_serve::HttpReply> {
            hs.into_iter()
                .map(|h| h.join().expect("no panic").expect("transport ok"))
                .collect()
        }
        (collect(longs), collect(shorts))
    });
    let elapsed = started.elapsed();

    for r in &longs {
        assert_eq!(r.status, 200, "long-deadline request: {}", r.body);
    }
    // Every short request misses its deadline. At most one (popped
    // fresh, before its 40 ms ran out) may trap in the budget meter
    // mid-execution; the rest must be shed at pop without executing.
    let mut shed = 0;
    for r in &shorts {
        assert_eq!(r.status, 504, "short-deadline request: {}", r.body);
        match field(&r.body, "kind").as_deref() {
            Some("shed") => {
                assert_eq!(
                    field(&r.body, "status").as_deref(),
                    Some("deadline_exceeded")
                );
                shed += 1;
            }
            Some("budget") => {}
            other => panic!("unexpected 504 kind {other:?}: {}", r.body),
        }
    }
    assert!(shed >= 2, "expected >=2 shed replies, got {shed}");

    // The aggregate wall clock is the proof sheds skip the worker: at
    // most 4 jobs execute (3 long + <=1 short), so anything past ~5.5
    // service times means expired jobs paid for slots anyway.
    assert!(
        elapsed < Duration::from_millis(DELAY_MS * 11 / 2),
        "burst took {elapsed:?}; did expired jobs occupy the worker?"
    );

    let h = get(addr, "/healthz", TIMEOUT).expect("healthz");
    let shed_expired: u64 = field(&h.body, "shed_expired").unwrap().parse().unwrap();
    assert!(shed_expired >= 2, "healthz shed_expired: {}", h.body);

    server.join();
}

#[test]
fn token_bucket_throttles_one_tenant_without_touching_another() {
    let server = start(ServeConfig {
        workers: 2,
        tenant_rps: 1.0,
        tenant_burst: 2.0,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = named_body(None);

    // Alice burns her 2-token burst, then hits the bucket.
    let first = post_as(addr, "alice", &body).expect("transport ok");
    let second = post_as(addr, "alice", &body).expect("transport ok");
    let third = post_as(addr, "alice", &body).expect("transport ok");
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(second.status, 200, "{}", second.body);
    assert_eq!(third.status, 429, "{}", third.body);
    assert_eq!(field(&third.body, "kind").as_deref(), Some("quota"));
    let retry_after = third
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
        .map(|(_, v)| v.clone())
        .expect("quota 429 carries Retry-After");
    assert!(
        retry_after.parse::<u64>().expect("integer seconds") >= 1,
        "Retry-After {retry_after:?}"
    );

    // Bob's bucket is his own.
    let bob = post_as(addr, "bob", &body).expect("transport ok");
    assert_eq!(bob.status, 200, "{}", bob.body);

    server.join();
}

#[test]
fn repeat_inline_matrix_hits_the_store() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let body = inline_body(128, 4, 0xBEEF);

    let cold = post_as(addr, "t0", &body).expect("transport ok");
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(field(&cold.body, "store_hit").as_deref(), Some("false"));

    let warm = post_as(addr, "t0", &body).expect("transport ok");
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(field(&warm.body, "store_hit").as_deref(), Some("true"));
    // Bit-identical answers either way.
    assert_eq!(field(&cold.body, "checksum"), field(&warm.body, "checksum"));

    let h = get(addr, "/healthz", TIMEOUT).expect("healthz");
    let entries: u64 = field(&h.body, "store_entries").unwrap().parse().unwrap();
    assert!(entries >= 1, "healthz: {}", h.body);

    server.join();
}

#[test]
fn brownout_rejects_inline_while_named_still_flows() {
    let server = start(ServeConfig {
        workers: 1,
        worker_delay_ms: 150,
        job_bound: 4,
        tenant_queue_bound: 8,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    // Warm compile + matrix build (pays one 150 ms slot).
    let warm = post(addr, "/v1/run", &named_body(None), TIMEOUT).expect("transport ok");
    assert_eq!(warm.status, 200, "warmup: {}", warm.body);

    std::thread::scope(|s| {
        // Four slow named requests pile the job queue to brownout depth
        // (depth 3 queued behind 1 executing; 3*2 >= job_bound of 4).
        let mut slow = Vec::new();
        for _ in 0..4 {
            slow.push(s.spawn(move || post_as(addr, "steady", &named_body(None))));
        }
        std::thread::sleep(Duration::from_millis(80));

        // Inline is the expensive luxury the brownout sheds first...
        let inline = post_as(addr, "burst", &inline_body(128, 4, 0xD00D)).expect("transport ok");
        assert_eq!(inline.status, 429, "{}", inline.body);
        assert_eq!(field(&inline.body, "kind").as_deref(), Some("brownout"));

        // ...while named requests (and the queued backlog) still complete.
        let named = post_as(addr, "burst", &named_body(None)).expect("transport ok");
        assert_eq!(named.status, 200, "{}", named.body);
        for h in slow {
            let r = h.join().expect("no panic").expect("transport ok");
            assert_eq!(r.status, 200, "queued named request: {}", r.body);
        }
    });

    server.join();
}
