//! Differential fuzzing of the full pipeline (ISSUE acceptance gate):
//! ≥64 fixed-seed cases, each compiled under all three prefetch
//! strategies across formats and index widths, interpreted, and checked
//! bit-identical against each other and (approximately) against a dense
//! reference — plus a MatrixMarket corruption stage asserting that byte
//! damage yields typed errors with useful diagnostics, never panics.
//!
//! Everything is seeded: a failure message names the seed/case, and
//! re-running reproduces it exactly.

use asap::tensor::{Format, IndexWidth};
use asap_fuzz::{
    corruption_must_error, corruptions, degenerate_cases, differential_spmv, fuzz_smoke,
    random_triplets, to_mtx_bytes, Outcome, Rng64,
};

/// The headline gate: 64 random fixed-seed cases, every one exercising a
/// (format, width, distance) combination drawn from its own seed.
#[test]
fn sixty_four_random_cases_agree_across_strategies() {
    let formats = [Format::csr(), Format::coo(), Format::dcsr()];
    let widths = [IndexWidth::U32, IndexWidth::U64];
    let mut verified = 0usize;
    for seed in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(0xd1ff * (seed + 1));
        let tri = random_triplets(&mut rng, 40, 200);
        let fmt = &formats[(seed % 3) as usize];
        let width = widths[(seed % 2) as usize];
        let distance = 1 + (seed as usize * 7) % 90;
        match differential_spmv(&tri, fmt, width, distance)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"))
        {
            Outcome::Verified => verified += 1,
            Outcome::Rejected(msg) => {
                panic!("seed {seed}: in-range random input rejected: {msg}")
            }
        }
    }
    assert_eq!(verified, 64);
}

/// Degenerate shapes run under every format/width combination: valid ones
/// verify, invalid ones are rejected with a typed error naming the cause.
#[test]
fn degenerate_inputs_never_panic() {
    let formats = [Format::csr(), Format::coo(), Format::dcsr()];
    let widths = [IndexWidth::U32, IndexWidth::U64];
    let (mut verified, mut rejected) = (0usize, 0usize);
    for (label, tri) in degenerate_cases(7) {
        for fmt in &formats {
            for &width in &widths {
                match differential_spmv(&tri, fmt, width, 45)
                    .unwrap_or_else(|e| panic!("{label} ({fmt}, {width:?}): {e}"))
                {
                    Outcome::Verified => verified += 1,
                    Outcome::Rejected(msg) => {
                        assert!(
                            msg.contains("out of bounds"),
                            "{label}: rejection must name the cause: {msg}"
                        );
                        rejected += 1;
                    }
                }
            }
        }
    }
    assert!(verified > 0, "some degenerate shapes are valid");
    // Both out-of-range cases, under all 6 combinations each.
    assert_eq!(rejected, 12, "out-of-range cases must all be rejected");
}

/// MatrixMarket corruption stage: every corruptor output parses to a
/// typed error with a line-numbered, non-empty message.
#[test]
fn corrupted_mtx_streams_yield_typed_errors() {
    for seed in 0..8u64 {
        let mut rng = Rng64::seed_from_u64(0xc0de + seed);
        let tri = random_triplets(&mut rng, 20, 80);
        let bytes = to_mtx_bytes(&tri);
        for (label, corrupt) in corruptions(&bytes, &mut rng) {
            let msg = corruption_must_error(&label, &corrupt)
                .unwrap_or_else(|violation| panic!("seed {seed}: {violation}"));
            // Structural errors past the header must carry a position.
            if label != "bad-header" {
                assert!(
                    msg.contains("line") || msg.contains("size"),
                    "seed {seed} {label}: diagnostic lacks a position: {msg}"
                );
            }
        }
    }
}

/// The CI smoke entry point stays green and reports sensible counts.
#[test]
fn fuzz_smoke_pass() {
    let (verified, rejected) = fuzz_smoke(2026, 64).unwrap();
    assert!(verified >= 64, "{verified} verified");
    assert!(rejected >= 2, "{rejected} rejected");
}
