//! Trace-level verification of the prefetch semantics — the paper's
//! Section 3.2.2 claim, checked directly on the access stream rather than
//! through timing: ASaP's buffer-size bound keeps prefetching live across
//! segment boundaries, so it covers the gather lines that A&J's
//! loop-bound clamp misses on short rows.

use asap::core::{compile_with_width, PrefetchStrategy};
use asap::ir::{Buffers, TraceEvent, TraceModel, V};
use asap::matrices::gen;
use asap::sparsifier::{bind, KernelArg, KernelSpec};
use asap::tensor::{DenseTensor, Format, SparseTensor, ValueKind};

/// Run SpMV under a trace model; return the interleaved x-buffer event
/// stream (demand loads and prefetches, in program order).
fn gather_trace(sparse: &SparseTensor, n: usize, strat: &PrefetchStrategy) -> Vec<(bool, u64)> {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), strat).unwrap();
    let x = DenseTensor::from_f64(vec![n], vec![1.0; n]);
    let out = DenseTensor::zeros(ValueKind::F64, vec![sparse.dims()[0]]);
    let bound = bind(&ck.kernel, sparse, &[&x], &out).unwrap();
    let x_pos = ck
        .kernel
        .arg_position(KernelArg::DenseInput { input: 1 })
        .unwrap();
    let V::Mem(x_buf) = bound.args[x_pos] else {
        unreachable!()
    };
    let mut bufs: Buffers = bound.bufs;
    let (x_base, x_len) = {
        let b = bufs.get(x_buf);
        (b.base_addr, b.data.len() as u64 * 8)
    };
    let mut t = TraceModel::new();
    asap::ir::interpret(&ck.kernel.func, &bound.args, &mut bufs, &mut t).unwrap();
    let in_x = |a: u64| a >= x_base && a < x_base + x_len;
    let mut stream = Vec::new();
    for e in &t.events {
        match e {
            TraceEvent::Load { addr, .. } if in_x(*addr) => stream.push((false, addr / 64)),
            TraceEvent::Prefetch { addr, .. } if in_x(*addr) => stream.push((true, addr / 64)),
            _ => {}
        }
    }
    stream
}

/// Fraction of demand gathers whose line was prefetched within the
/// preceding `window` x-buffer events — a timeliness-aware coverage
/// metric (a prefetch thousands of iterations stale does not count).
fn coverage(stream: &[(bool, u64)], window: usize) -> f64 {
    let mut last_pf: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let (mut covered, mut demand) = (0usize, 0usize);
    for (k, &(is_pf, line)) in stream.iter().enumerate() {
        if is_pf {
            last_pf.insert(line, k);
        } else {
            demand += 1;
            if last_pf.get(&line).is_some_and(|&p| k - p <= window) {
                covered += 1;
            }
        }
    }
    if demand == 0 {
        0.0
    } else {
        covered as f64 / demand as f64
    }
}

#[test]
fn asap_covers_gathers_across_segments_aj_does_not() {
    // Rows of degree 2-4 with prefetch distance 16 >> segment length.
    let mut tri = gen::road_network(4_000, 11);
    for v in &mut tri.vals {
        *v = 1.0;
    }
    tri.binary = false;
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let n = tri.ncols;

    // Timeliness window: 2 events per iteration (pf + load), distance 16,
    // with 4x slack.
    let w = 16 * 2 * 4;
    let s_asap = gather_trace(&sparse, n, &PrefetchStrategy::asap(16));
    let s_aj = gather_trace(&sparse, n, &PrefetchStrategy::aj(16));
    let c_asap = coverage(&s_asap, w);
    let c_aj = coverage(&s_aj, w);
    assert!(
        c_asap > 0.9,
        "ASaP covers (nearly) every gather line in time: {c_asap:.3}"
    );
    assert!(
        c_aj < c_asap - 0.2,
        "A&J's clamp must lose cross-segment coverage: {c_aj:.3} vs {c_asap:.3}"
    );
}

#[test]
fn long_segments_equalize_coverage() {
    // Rows of ~101 elements with distance 8: the clamp only affects the
    // last few elements of each row.
    let tri = gen::banded(1_000, 50, 3);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let w = 8 * 2 * 4;
    let c1 = coverage(&gather_trace(&sparse, 1_000, &PrefetchStrategy::asap(8)), w);
    let c2 = coverage(&gather_trace(&sparse, 1_000, &PrefetchStrategy::aj(8)), w);
    assert!(c1 > 0.9 && c2 > 0.85, "both near-full: {c1:.3} vs {c2:.3}");
    assert!((c1 - c2).abs() < 0.1, "bounds coincide on long rows");
}

#[test]
fn asap_prefetch_stream_leads_demand_by_distance() {
    // On a single long row, the Step-3 prefetch at iteration i must touch
    // the address demanded at iteration i+d.
    let mut t = asap::matrices::Triplets::new(1, 4096);
    for j in 0..4096 {
        t.push(0, (j * 37) % 4096, 1.0); // fixed pseudo-random gather
    }
    let sparse = SparseTensor::from_coo(&t.to_coo_f64(), Format::csr());
    let d = 12usize;
    let spec = KernelSpec::spmv(ValueKind::F64);
    let ck = compile_with_width(
        &spec,
        &Format::csr(),
        sparse.index_width(),
        &PrefetchStrategy::asap(d),
    )
    .unwrap();
    let x = DenseTensor::from_f64(vec![4096], vec![1.0; 4096]);
    let out = DenseTensor::zeros(ValueKind::F64, vec![1]);
    let bound = bind(&ck.kernel, &sparse, &[&x], &out).unwrap();
    let V::Mem(x_buf) = bound.args[ck
        .kernel
        .arg_position(KernelArg::DenseInput { input: 1 })
        .unwrap()]
    else {
        unreachable!()
    };
    let mut bufs = bound.bufs;
    let (x_base, x_len) = {
        let b = bufs.get(x_buf);
        (b.base_addr, b.data.len() as u64 * 8)
    };
    let in_x = |a: u64| a >= x_base && a < x_base + x_len;
    let mut tr = TraceModel::new();
    asap::ir::interpret(&ck.kernel.func, &bound.args, &mut bufs, &mut tr).unwrap();

    let demand: Vec<u64> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Load { addr, .. } if in_x(*addr) => Some(*addr),
            _ => None,
        })
        .collect();
    let pf: Vec<u64> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Prefetch { addr, .. } if in_x(*addr) => Some(*addr),
            _ => None,
        })
        .collect();
    assert_eq!(demand.len(), 4096);
    // Steady state: prefetch k targets the demand address of iteration
    // k + d (the last d prefetches clamp to the final coordinate).
    for k in 0..demand.len() - d {
        assert_eq!(pf[k], demand[k + d], "iteration {k}");
    }
}

// ---------------------------------------------------------------------------
// Property tests: prefetch injection is semantically a no-op (Section 3.2.2).
// ---------------------------------------------------------------------------

/// Demand Load/Store stream restricted to `[lo, hi)`, in program order.
/// `(is_store, addr)` pairs; prefetches are excluded by construction.
fn range_stream(events: &[TraceEvent], lo: u64, hi: u64) -> Vec<(bool, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Load { addr, .. } if *addr >= lo && *addr < hi => Some((false, *addr)),
            TraceEvent::Store { addr, .. } if *addr >= lo && *addr < hi => Some((true, *addr)),
            _ => None,
        })
        .collect()
}

struct TracedSpmv {
    events: Vec<TraceEvent>,
    x_range: (u64, u64),
    out_range: (u64, u64),
    crd_range: (u64, u64),
    pos_range: (u64, u64),
    y_bits: Vec<u64>,
}

/// Run CSR SpMV under a full trace model and report the event stream,
/// the operand address ranges, and the bit pattern of the result.
fn traced_spmv(sparse: &SparseTensor, n: usize, strat: &PrefetchStrategy) -> TracedSpmv {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), strat).unwrap();
    let x = DenseTensor::from_f64(
        vec![n],
        (0..n).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect(),
    );
    let out = DenseTensor::zeros(ValueKind::F64, vec![sparse.dims()[0]]);
    let bound = bind(&ck.kernel, sparse, &[&x], &out).unwrap();
    let pos_of = |arg: KernelArg| ck.kernel.arg_position(arg).unwrap();
    let buf_of = |p: usize| match bound.args[p] {
        V::Mem(b) => b,
        _ => unreachable!("memref argument binds to a buffer"),
    };
    let x_buf = buf_of(pos_of(KernelArg::DenseInput { input: 1 }));
    let out_buf = buf_of(pos_of(KernelArg::Output));
    let crd_buf = buf_of(pos_of(KernelArg::Crd { level: 1 }));
    let pos_buf = buf_of(pos_of(KernelArg::Pos { level: 1 }));
    let mut bufs: Buffers = bound.bufs;
    let range = |bufs: &Buffers, b| {
        let buf = bufs.get(b);
        let bytes = buf.data.len() as u64 * buf.data.elem_bytes() as u64;
        (buf.base_addr, buf.base_addr + bytes)
    };
    let x_range = range(&bufs, x_buf);
    let out_range = range(&bufs, out_buf);
    let crd_range = range(&bufs, crd_buf);
    let pos_range = range(&bufs, pos_buf);
    let mut t = TraceModel::new();
    asap::ir::interpret(&ck.kernel.func, &bound.args, &mut bufs, &mut t).unwrap();
    let y_bits: Vec<u64> = match &bufs.get(out_buf).data {
        asap::ir::BufferData::F64(v) => v.iter().map(|f| f.to_bits()).collect(),
        other => panic!("f64 output expected, got {other:?}"),
    };
    TracedSpmv {
        events: t.events,
        x_range,
        out_range,
        crd_range,
        pos_range,
        y_bits,
    }
}

#[test]
fn injection_leaves_dense_demand_traffic_and_results_unchanged() {
    // The paper's key semantic claim, checked on the access stream: the
    // injected code adds prefetches and look-ahead *coordinate* loads,
    // but the demand Load/Store streams on the dense operands (the
    // gather source x and the output y) are byte-for-byte those of the
    // uninstrumented kernel — and the result bits are identical.
    let tri = gen::power_law(1_200, 6, 1.0, 17);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let n = tri.ncols;

    let base = traced_spmv(&sparse, n, &PrefetchStrategy::none());
    let base_x = range_stream(&base.events, base.x_range.0, base.x_range.1);
    let base_out = range_stream(&base.events, base.out_range.0, base.out_range.1);
    let base_crd_loads = range_stream(&base.events, base.crd_range.0, base.crd_range.1).len();
    assert!(!base_x.is_empty() && !base_out.is_empty());

    for strat in [
        PrefetchStrategy::asap(16),
        PrefetchStrategy::asap(1),
        PrefetchStrategy::aj(16),
    ] {
        let t = traced_spmv(&sparse, n, &strat);
        assert_eq!(
            range_stream(&t.events, t.x_range.0, t.x_range.1),
            base_x,
            "{}: demand gather stream on x changed",
            strat.label()
        );
        assert_eq!(
            range_stream(&t.events, t.out_range.0, t.out_range.1),
            base_out,
            "{}: output demand stream changed",
            strat.label()
        );
        assert_eq!(t.y_bits, base.y_bits, "{}: result bits", strat.label());
        // The only extra demand loads are look-ahead coordinate loads,
        // plus ASaP's hoisted size-chain read of pos[nrows] (Fig. 5
        // lines 8-10) — a once-per-run metadata load.
        let crd_loads = range_stream(&t.events, t.crd_range.0, t.crd_range.1).len();
        assert!(
            crd_loads >= base_crd_loads,
            "{}: {crd_loads} vs {base_crd_loads}",
            strat.label()
        );
        let base_pos_loads = range_stream(&base.events, base.pos_range.0, base.pos_range.1).len();
        let pos_loads = range_stream(&t.events, t.pos_range.0, t.pos_range.1).len();
        assert!(
            pos_loads - base_pos_loads <= 1,
            "{}: the size chain is hoisted, so at most one extra pos load",
            strat.label()
        );
        let extra_demand: usize = t
            .events
            .iter()
            .filter(|e| !e.is_prefetch())
            .count()
            .saturating_sub(base.events.iter().filter(|e| !e.is_prefetch()).count());
        assert_eq!(
            extra_demand,
            (crd_loads - base_crd_loads) + (pos_loads - base_pos_loads),
            "{}: extra demand traffic outside the crd/pos metadata streams",
            strat.label()
        );
    }
}

#[test]
fn outputs_bit_identical_across_strategies_formats_and_widths() {
    use asap::tensor::IndexWidth;
    for seed in [1u64, 7, 23] {
        let tri = gen::erdos_renyi(600, 5, seed);
        for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
            for width in [IndexWidth::U32, IndexWidth::U64] {
                let mut sparse = SparseTensor::from_coo(&tri.to_coo_f64(), fmt.clone());
                sparse.set_index_width(width);
                let x: Vec<f64> = (0..tri.ncols)
                    .map(|i| 0.5 + (i % 11) as f64 * 0.125)
                    .collect();
                let spec = KernelSpec::spmv(ValueKind::F64);
                let mut reference: Option<Vec<u64>> = None;
                for strat in [
                    PrefetchStrategy::none(),
                    PrefetchStrategy::asap(45),
                    PrefetchStrategy::aj(45),
                ] {
                    let ck = compile_with_width(&spec, &fmt, width, &strat).unwrap();
                    let y = asap::core::run_spmv_f64(&ck, &sparse, &x).unwrap();
                    let bits: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                    match &reference {
                        None => reference = Some(bits),
                        Some(r) => assert_eq!(
                            &bits,
                            r,
                            "seed {seed} {fmt} {width:?} {}: outputs must be bit-identical",
                            strat.label()
                        ),
                    }
                }
            }
        }
    }
}
