//! Trace-level verification of the prefetch semantics — the paper's
//! Section 3.2.2 claim, checked directly on the access stream rather than
//! through timing: ASaP's buffer-size bound keeps prefetching live across
//! segment boundaries, so it covers the gather lines that A&J's
//! loop-bound clamp misses on short rows.

use asap::core::{compile_with_width, PrefetchStrategy};
use asap::ir::{Buffers, TraceEvent, TraceModel, V};
use asap::matrices::gen;
use asap::sparsifier::{bind, KernelArg, KernelSpec};
use asap::tensor::{DenseTensor, Format, SparseTensor, ValueKind};

/// Run SpMV under a trace model; return the interleaved x-buffer event
/// stream (demand loads and prefetches, in program order).
fn gather_trace(
    sparse: &SparseTensor,
    n: usize,
    strat: &PrefetchStrategy,
) -> Vec<(bool, u64)> {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), strat).unwrap();
    let x = DenseTensor::from_f64(vec![n], vec![1.0; n]);
    let out = DenseTensor::zeros(ValueKind::F64, vec![sparse.dims()[0]]);
    let bound = bind(&ck.kernel, sparse, &[&x], &out).unwrap();
    let x_pos = ck
        .kernel
        .arg_position(KernelArg::DenseInput { input: 1 })
        .unwrap();
    let V::Mem(x_buf) = bound.args[x_pos] else {
        unreachable!()
    };
    let mut bufs: Buffers = bound.bufs;
    let (x_base, x_len) = {
        let b = bufs.get(x_buf);
        (b.base_addr, b.data.len() as u64 * 8)
    };
    let mut t = TraceModel::new();
    asap::ir::interpret(&ck.kernel.func, &bound.args, &mut bufs, &mut t).unwrap();
    let in_x = |a: u64| a >= x_base && a < x_base + x_len;
    let mut stream = Vec::new();
    for e in &t.events {
        match e {
            TraceEvent::Load { addr, .. } if in_x(*addr) => stream.push((false, addr / 64)),
            TraceEvent::Prefetch { addr, .. } if in_x(*addr) => stream.push((true, addr / 64)),
            _ => {}
        }
    }
    stream
}

/// Fraction of demand gathers whose line was prefetched within the
/// preceding `window` x-buffer events — a timeliness-aware coverage
/// metric (a prefetch thousands of iterations stale does not count).
fn coverage(stream: &[(bool, u64)], window: usize) -> f64 {
    let mut last_pf: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let (mut covered, mut demand) = (0usize, 0usize);
    for (k, &(is_pf, line)) in stream.iter().enumerate() {
        if is_pf {
            last_pf.insert(line, k);
        } else {
            demand += 1;
            if last_pf.get(&line).is_some_and(|&p| k - p <= window) {
                covered += 1;
            }
        }
    }
    if demand == 0 {
        0.0
    } else {
        covered as f64 / demand as f64
    }
}

#[test]
fn asap_covers_gathers_across_segments_aj_does_not() {
    // Rows of degree 2-4 with prefetch distance 16 >> segment length.
    let mut tri = gen::road_network(4_000, 11);
    for v in &mut tri.vals {
        *v = 1.0;
    }
    tri.binary = false;
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let n = tri.ncols;

    // Timeliness window: 2 events per iteration (pf + load), distance 16,
    // with 4x slack.
    let w = 16 * 2 * 4;
    let s_asap = gather_trace(&sparse, n, &PrefetchStrategy::asap(16));
    let s_aj = gather_trace(&sparse, n, &PrefetchStrategy::aj(16));
    let c_asap = coverage(&s_asap, w);
    let c_aj = coverage(&s_aj, w);
    assert!(
        c_asap > 0.9,
        "ASaP covers (nearly) every gather line in time: {c_asap:.3}"
    );
    assert!(
        c_aj < c_asap - 0.2,
        "A&J's clamp must lose cross-segment coverage: {c_aj:.3} vs {c_asap:.3}"
    );
}

#[test]
fn long_segments_equalize_coverage() {
    // Rows of ~101 elements with distance 8: the clamp only affects the
    // last few elements of each row.
    let tri = gen::banded(1_000, 50, 3);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let w = 8 * 2 * 4;
    let c1 = coverage(&gather_trace(&sparse, 1_000, &PrefetchStrategy::asap(8)), w);
    let c2 = coverage(&gather_trace(&sparse, 1_000, &PrefetchStrategy::aj(8)), w);
    assert!(c1 > 0.9 && c2 > 0.85, "both near-full: {c1:.3} vs {c2:.3}");
    assert!((c1 - c2).abs() < 0.1, "bounds coincide on long rows");
}

#[test]
fn asap_prefetch_stream_leads_demand_by_distance() {
    // On a single long row, the Step-3 prefetch at iteration i must touch
    // the address demanded at iteration i+d.
    let mut t = asap::matrices::Triplets::new(1, 4096);
    for j in 0..4096 {
        t.push(0, (j * 37) % 4096, 1.0); // fixed pseudo-random gather
    }
    let sparse = SparseTensor::from_coo(&t.to_coo_f64(), Format::csr());
    let d = 12usize;
    let spec = KernelSpec::spmv(ValueKind::F64);
    let ck = compile_with_width(
        &spec,
        &Format::csr(),
        sparse.index_width(),
        &PrefetchStrategy::asap(d),
    )
    .unwrap();
    let x = DenseTensor::from_f64(vec![4096], vec![1.0; 4096]);
    let out = DenseTensor::zeros(ValueKind::F64, vec![1]);
    let bound = bind(&ck.kernel, &sparse, &[&x], &out).unwrap();
    let V::Mem(x_buf) = bound.args[ck
        .kernel
        .arg_position(KernelArg::DenseInput { input: 1 })
        .unwrap()]
    else {
        unreachable!()
    };
    let mut bufs = bound.bufs;
    let (x_base, x_len) = {
        let b = bufs.get(x_buf);
        (b.base_addr, b.data.len() as u64 * 8)
    };
    let in_x = |a: u64| a >= x_base && a < x_base + x_len;
    let mut tr = TraceModel::new();
    asap::ir::interpret(&ck.kernel.func, &bound.args, &mut bufs, &mut tr).unwrap();

    let demand: Vec<u64> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Load { addr, .. } if in_x(*addr) => Some(*addr),
            _ => None,
        })
        .collect();
    let pf: Vec<u64> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Prefetch { addr, .. } if in_x(*addr) => Some(*addr),
            _ => None,
        })
        .collect();
    assert_eq!(demand.len(), 4096);
    // Steady state: prefetch k targets the demand address of iteration
    // k + d (the last d prefetches clamp to the final coordinate).
    for k in 0..demand.len() - d {
        assert_eq!(pf[k], demand[k + d], "iteration {k}");
    }
}
