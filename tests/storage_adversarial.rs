//! Adversarial inputs for [`SparseTensor::check_invariants`]: hand-built
//! storages violating each structural invariant, plus every output of the
//! fuzz crate's MatrixMarket byte-corruptors that still parses. The
//! contract under attack: validation returns a typed `storage` error —
//! never a panic, never an out-of-bounds read.

use asap::tensor::{Format, SparseTensor};
use asap_fuzz::{corruptions, random_triplets, to_mtx_bytes, Rng64};
use asap_matrices::{read_matrix_market, Triplets};

/// A small valid CSR tensor (dense rows level + compressed cols level).
fn csr_fixture() -> SparseTensor {
    let mut tri = Triplets::new(6, 6);
    for r in 0..6 {
        tri.push(r, r, 1.0 + r as f64);
        tri.push(r, (r + 2) % 6, 0.5);
    }
    let coo = tri.try_to_coo_f64().unwrap();
    let t = SparseTensor::try_from_coo(&coo, Format::csr()).unwrap();
    t.check_invariants().expect("fixture starts valid");
    t
}

/// A small valid COO tensor (compressed non-unique + singleton levels).
fn coo_fixture() -> SparseTensor {
    let mut tri = Triplets::new(5, 5);
    for r in 0..5 {
        tri.push(r, 4 - r, 2.0);
    }
    let coo = tri.try_to_coo_f64().unwrap();
    let t = SparseTensor::try_from_coo(&coo, Format::coo()).unwrap();
    t.check_invariants().expect("fixture starts valid");
    t
}

fn expect_storage_error(t: &SparseTensor, needle: &str) {
    let err = t
        .check_invariants()
        .expect_err("corrupted storage must be rejected");
    assert_eq!(err.kind(), "storage", "{err}");
    assert!(err.to_string().contains(needle), "want {needle:?} in {err}");
}

#[test]
fn out_of_range_coordinate_is_rejected() {
    let mut t = csr_fixture();
    // Row 0 stores columns [0, 2]; raising the larger one keeps the
    // segment sorted so the *range* check is what fires.
    t.level_mut(1).crd[1] = 999; // column 999 in a 6-wide matrix
    expect_storage_error(&t, "out of range");
}

#[test]
fn unsorted_segment_is_rejected() {
    let mut t = csr_fixture();
    // Each row has two columns; reverse the first row's pair.
    let crd = &mut t.level_mut(1).crd;
    crd.swap(0, 1);
    expect_storage_error(&t, "not sorted");
}

#[test]
fn duplicate_coordinate_in_unique_level_is_rejected() {
    let mut t = csr_fixture();
    let crd = &mut t.level_mut(1).crd;
    crd[1] = crd[0]; // CSR columns are a unique level: strict order required
    expect_storage_error(&t, "not sorted");
}

#[test]
fn non_monotone_pos_is_rejected() {
    let mut t = csr_fixture();
    // Valid endpoints (first 0, last crd.len()) but a backwards interior
    // step. The checker must reject it *before* slicing segments — this
    // is the shape that would otherwise read out of bounds.
    let pos = &mut t.level_mut(1).pos;
    let last = *pos.last().unwrap();
    pos[1] = last + 5;
    expect_storage_error(&t, "not monotone");
}

#[test]
fn wrong_pos_endpoints_are_rejected() {
    let mut t = csr_fixture();
    *t.level_mut(1).pos.last_mut().unwrap() += 1;
    expect_storage_error(&t, "endpoints");
}

#[test]
fn wrong_pos_length_is_rejected() {
    let mut t = csr_fixture();
    t.level_mut(1).pos.push(12); // one boundary too many
    expect_storage_error(&t, "pos len");
}

#[test]
fn dense_level_with_buffers_is_rejected() {
    let mut t = csr_fixture();
    t.level_mut(0).crd.push(0); // CSR's row level is dense: no buffers
    expect_storage_error(&t, "dense level has buffers");
}

#[test]
fn singleton_level_corruptions_are_rejected() {
    let mut t = coo_fixture();
    t.level_mut(1).pos.push(0);
    expect_storage_error(&t, "singleton has pos");

    let mut t = coo_fixture();
    t.level_mut(1).crd.pop();
    expect_storage_error(&t, "singleton crd len");

    let mut t = coo_fixture();
    t.level_mut(1).crd[0] = 77;
    expect_storage_error(&t, "out of range");
}

#[test]
fn truncated_crd_is_rejected_not_read_out_of_bounds() {
    let mut t = csr_fixture();
    // Shrink crd without fixing pos: every pos segment now points past
    // the end of the buffer.
    t.level_mut(1).crd.truncate(3);
    let err = t.check_invariants().expect_err("truncated crd");
    assert_eq!(err.kind(), "storage");
}

/// Every byte-corrupted MatrixMarket stream that *still parses* must
/// build storages satisfying the invariants — the corruption either dies
/// in the parser with a typed error or survives as a well-formed (if
/// meaningless) matrix. Nothing panics, nothing reads out of bounds.
#[test]
fn fuzz_corruptor_outputs_never_break_storage_validation() {
    let mut rng = Rng64::seed_from_u64(0x57a6e);
    let mut parsed = 0usize;
    let mut rejected = 0usize;
    for _ in 0..8 {
        let tri = random_triplets(&mut rng, 24, 120);
        let bytes = to_mtx_bytes(&tri);
        for (label, corrupt) in corruptions(&bytes, &mut rng) {
            match read_matrix_market(std::io::Cursor::new(&corrupt[..])) {
                Err(_) => rejected += 1, // typed parse rejection: the common case
                Ok(t) => {
                    let Ok(coo) = t.try_to_coo_f64() else {
                        rejected += 1;
                        continue;
                    };
                    for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
                        match SparseTensor::try_from_coo(&coo, fmt) {
                            Ok(s) => {
                                s.check_invariants()
                                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                                parsed += 1;
                            }
                            Err(_) => rejected += 1,
                        }
                    }
                }
            }
        }
    }
    assert!(rejected > 0, "the corruption battery must bite");
    // `parsed` may be zero on some seeds; the point is nothing panicked.
    let _ = parsed;
}
