//! End-to-end pipeline tests spanning all crates: coordinate input →
//! storage → sparsification → prefetch pass → interpretation (functional
//! and simulated) → verified output.

use asap::core::{compile_with_width, run as run_compiled, PrefetchStrategy};
use asap::ir::NullModel;
use asap::matrices::{gen, read_matrix_market, write_matrix_market, Triplets};
use asap::sim::{GracemontConfig, Machine, PrefetcherConfig};
use asap::sparsifier::KernelSpec;
use asap::tensor::{DenseTensor, Format, SparseTensor, ValueKind};

fn spmv_all_strategies(tri: &Triplets, fmt: Format) {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), fmt.clone());
    let x: Vec<f64> = (0..tri.ncols).map(|i| 1.0 + (i % 5) as f64).collect();
    let expect = tri.dense_spmv(&x);
    for strat in [
        PrefetchStrategy::none(),
        PrefetchStrategy::asap(45),
        PrefetchStrategy::asap(1),
        PrefetchStrategy::aj(45),
    ] {
        let ck = compile_with_width(&spec, &fmt, sparse.index_width(), &strat).unwrap();
        let y = asap::core::run_spmv_f64(&ck, &sparse, &x).unwrap();
        for (i, (g, w)) in y.iter().zip(&expect).enumerate() {
            assert!(
                (g - w).abs() < 1e-9 * (1.0 + w.abs()),
                "{fmt}/{}: row {i}: {g} vs {w}",
                strat.label()
            );
        }
    }
}

#[test]
fn spmv_every_format_every_strategy() {
    let tri = gen::erdos_renyi(500, 5, 3);
    for fmt in [Format::csr(), Format::csc(), Format::coo(), Format::dcsr()] {
        spmv_all_strategies(&tri, fmt);
    }
}

#[test]
fn spmv_on_generator_archetypes() {
    for tri in [
        gen::banded(400, 3, 1),
        gen::stencil5(20, 20),
        gen::rmat(9, 4, 2),
        gen::road_network(600, 3),
        gen::power_law(500, 6, 1.1, 4),
        gen::web_graph(300, 6, 5),
        gen::block_diagonal(10, 16, 0.3, 6),
        gen::diagonal(128),
    ] {
        let mut t = tri.clone();
        if t.binary {
            // The f64 path needs weights.
            for v in &mut t.vals {
                *v = 0.5;
            }
            t.binary = false;
        }
        spmv_all_strategies(&t, Format::csr());
    }
}

#[test]
fn simulated_run_matches_functional_run() {
    let tri = gen::power_law(2000, 6, 1.0, 9);
    let spec = KernelSpec::spmv(ValueKind::F64);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let ck = compile_with_width(
        &spec,
        &Format::csr(),
        sparse.index_width(),
        &PrefetchStrategy::asap(16),
    )
    .unwrap();
    let x: Vec<f64> = (0..2000).map(|i| (i % 3) as f64).collect();
    let functional = asap::core::run_spmv_f64(&ck, &sparse, &x).unwrap();
    let mut machine = Machine::new(GracemontConfig::scaled(), PrefetcherConfig::hw_default());
    let simulated = asap::core::run_spmv_f64_with(&ck, &sparse, &x, &mut machine).unwrap();
    assert_eq!(functional, simulated, "timing model must not alter results");
    let c = machine.counters();
    assert!(c.instructions > 0 && c.cycles > 0 && c.sw_pf_issued > 0);
}

#[test]
fn matrix_market_roundtrip_through_pipeline() {
    let tri = gen::erdos_renyi(300, 4, 11);
    let mut buf = Vec::new();
    write_matrix_market(&tri, &mut buf).unwrap();
    let back = read_matrix_market(&buf[..]).unwrap();
    assert_eq!(back.nnz(), tri.nnz());
    spmv_all_strategies(&back, Format::csr());
}

#[test]
fn spmm_pipeline_with_all_strategies() {
    let tri = gen::erdos_renyi(400, 5, 7);
    let spec = KernelSpec::spmm(ValueKind::F64);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let n_cols = 8;
    let c = DenseTensor::from_f64(
        vec![400, n_cols],
        (0..400 * n_cols).map(|i| (i % 9) as f64 * 0.5).collect(),
    );
    let mut reference: Option<Vec<f64>> = None;
    for strat in [
        PrefetchStrategy::none(),
        PrefetchStrategy::asap(45),
        PrefetchStrategy::aj(45),
    ] {
        let ck = compile_with_width(&spec, &Format::csr(), sparse.index_width(), &strat).unwrap();
        let a = asap::core::run_spmm_f64(&ck, &sparse, &c).unwrap();
        match &reference {
            None => reference = Some(a.as_f64().to_vec()),
            Some(r) => assert_eq!(a.as_f64(), &r[..], "{}", strat.label()),
        }
    }
}

#[test]
fn binary_semiring_spmv_end_to_end() {
    let mut tri = gen::road_network(300, 5);
    tri.binary = true;
    let spec = KernelSpec::spmv(ValueKind::I8);
    let sparse = SparseTensor::from_coo(&tri.to_coo_i8(), Format::csr());
    let ck = compile_with_width(
        &spec,
        &Format::csr(),
        sparse.index_width(),
        &PrefetchStrategy::asap(8),
    )
    .unwrap();
    // x = indicator of a vertex set; y = indicator of its in-neighbors.
    let x = DenseTensor::from_i8(vec![300], (0..300).map(|i| (i % 7 == 0) as i8).collect());
    let mut y = DenseTensor::zeros(ValueKind::I8, vec![300]);
    run_compiled(&ck, &sparse, &[&x], &mut y, &mut NullModel).unwrap();
    // Reference with the boolean semiring.
    let mut want = vec![0i8; 300];
    for k in 0..tri.nnz() {
        want[tri.rows[k]] |= ((tri.vals[k] != 0.0) && tri.cols[k].is_multiple_of(7)) as i8;
    }
    assert_eq!(y.as_i8(), &want[..]);
}

#[test]
fn mttkrp_csf_with_asap_prefetching() {
    use asap::tensor::{CooTensor, Values};
    // Random small 3-tensor.
    let dims = vec![6, 7, 8];
    let mut coords = Vec::new();
    let mut vals = Vec::new();
    for i in 0..40usize {
        coords.extend_from_slice(&[(i * 7) % 6, (i * 5) % 7, (i * 3) % 8]);
        vals.push(1.0 + (i % 4) as f64);
    }
    let coo = CooTensor::new(dims.clone(), coords, Values::F64(vals));
    let spec = KernelSpec::mttkrp(ValueKind::F64);
    let mut sparse = SparseTensor::from_coo(&coo, Format::csf(3));
    sparse.set_index_width(asap::tensor::IndexWidth::U64);
    let l = 4;
    let cmat = DenseTensor::from_f64(vec![7, l], (0..7 * l).map(|x| x as f64 * 0.5).collect());
    let dmat = DenseTensor::from_f64(
        vec![8, l],
        (0..8 * l).map(|x| 2.0 - x as f64 * 0.1).collect(),
    );

    let mut outs = Vec::new();
    for strat in [PrefetchStrategy::none(), PrefetchStrategy::asap(4)] {
        let ck = compile_with_width(
            &spec,
            &Format::csf(3),
            asap::tensor::IndexWidth::U64,
            &strat,
        )
        .unwrap();
        let mut a = DenseTensor::zeros(ValueKind::F64, vec![6, l]);
        run_compiled(&ck, &sparse, &[&cmat, &dmat], &mut a, &mut NullModel).unwrap();
        outs.push(a);
    }
    assert_eq!(outs[0].as_f64(), outs[1].as_f64());
    assert!(outs[0].as_f64().iter().any(|&v| v != 0.0));
}

#[test]
fn dcsr_and_csc_simulated_runs() {
    let tri = gen::power_law(1500, 5, 0.9, 13);
    for fmt in [Format::dcsr(), Format::csc()] {
        let spec = KernelSpec::spmv(ValueKind::F64);
        let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), fmt.clone());
        let ck = compile_with_width(
            &spec,
            &fmt,
            sparse.index_width(),
            &PrefetchStrategy::asap(12),
        )
        .unwrap();
        let x = vec![1.0; 1500];
        let mut machine = Machine::new(GracemontConfig::scaled(), PrefetcherConfig::hw_default());
        let y = asap::core::run_spmv_f64_with(&ck, &sparse, &x, &mut machine).unwrap();
        let want = tri.dense_spmv(&x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()), "{fmt}");
        }
    }
}
