//! The paper's experimental claims, asserted as tests on a down-scaled
//! machine (tiny caches so small matrices are memory-bound and the suite
//! stays fast). Each test names the paper section it reproduces.

use asap::matrices::gen;
use asap::sim::{CacheParams, GracemontConfig, PrefetcherConfig};
use asap_bench::{ews_speedup, run_spmm, run_spmv, Variant};

/// A machine with very small caches: a 64K-element vector (512 KB) is
/// already far beyond the 128 KB L3.
fn tiny_machine() -> GracemontConfig {
    GracemontConfig {
        l2: CacheParams {
            size_bytes: 32 * 1024,
            assoc: 8,
            latency: 16,
        },
        l3: CacheParams {
            size_bytes: 128 * 1024,
            assoc: 16,
            latency: 55,
        },
        ..GracemontConfig::scaled()
    }
}

fn spmv(
    tri: &asap::matrices::Triplets,
    v: Variant,
    pf: PrefetcherConfig,
) -> asap_bench::ExperimentResult {
    run_spmv(tri, "t", "g", true, v, pf, "hw", tiny_machine()).unwrap()
}

const D: usize = 45;

/// Section 5.1 / Figure 6: ASaP speeds up memory-bound SpMV
/// substantially.
#[test]
fn asap_speeds_up_memory_bound_spmv() {
    let tri = gen::erdos_renyi(64_000, 8, 3);
    let pf = PrefetcherConfig::optimized_spmv();
    let base = spmv(&tri, Variant::Baseline, pf);
    let asap = spmv(&tri, Variant::Asap { distance: D }, pf);
    assert!(
        base.l2_mpki > 20.0,
        "workload must be memory-bound: {base:?}"
    );
    let speedup = asap.throughput / base.throughput;
    assert!(speedup > 1.5, "expected clear speedup, got {speedup:.2}");
    assert!(
        asap.l2_mpki < base.l2_mpki / 2.0,
        "prefetching must slash demand misses"
    );
}

/// Section 5.1 / Figure 6: compute-bound (cache-resident) matrices pay
/// the instruction overhead — speedup below 1 but bounded.
#[test]
fn asap_regresses_mildly_on_compute_bound_spmv() {
    let tri = gen::banded(8_000, 3, 1); // fits comfortably in caches
    let pf = PrefetcherConfig::optimized_spmv();
    let base = spmv(&tri, Variant::Baseline, pf);
    let asap = spmv(&tri, Variant::Asap { distance: D }, pf);
    assert!(
        base.l2_mpki < 2.0,
        "must be compute-bound: {}",
        base.l2_mpki
    );
    let speedup = asap.throughput / base.throughput;
    assert!(speedup < 1.0, "overhead must show: {speedup:.2}");
    assert!(speedup > 0.6, "but bounded: {speedup:.2}");
}

/// Section 5.3 / Figure 11: on short-row matrices ASaP's buffer-size
/// bound beats A&J's loop-bound clamp.
#[test]
fn asap_beats_aj_on_short_rows() {
    // Degree ~3 rows, far below distance 45: A&J's clamped look-ahead
    // covers almost nothing.
    let tri = gen::road_network(64_000, 7);
    let mut t = tri;
    for v in &mut t.vals {
        *v = 0.5;
    }
    t.binary = false;
    let pf = PrefetcherConfig::optimized_spmv();
    let asap = spmv(&t, Variant::Asap { distance: D }, pf);
    let aj = spmv(&t, Variant::AinsworthJones { distance: D }, pf);
    let ratio = asap.throughput / aj.throughput;
    assert!(
        ratio > 1.2,
        "ASaP must beat A&J across segments: {ratio:.2}"
    );
}

/// Section 5.3: with long rows (segment length >> distance) the two
/// bounds coincide almost everywhere — A&J and ASaP converge.
#[test]
fn asap_and_aj_converge_on_long_rows() {
    let tri = gen::banded(3_000, 100, 5); // rows of ~200 elements
    let pf = PrefetcherConfig::optimized_spmv();
    let asap = spmv(&tri, Variant::Asap { distance: 16 }, pf);
    let aj = spmv(&tri, Variant::AinsworthJones { distance: 16 }, pf);
    let ratio = asap.throughput / aj.throughput;
    assert!(
        (0.9..1.15).contains(&ratio),
        "long rows neutralize the bound difference: {ratio:.2}"
    );
}

/// Section 5.3: A&J generates no prefetches for SpMM; ASaP's outer-loop
/// placement works (Figure 9 / Figure 10).
#[test]
fn spmm_aj_generates_nothing_asap_wins() {
    let tri = gen::erdos_renyi(32_000, 8, 9);
    let cfg = tiny_machine();
    let pf = PrefetcherConfig::optimized_spmm();
    let base = run_spmm(&tri, "t", "g", true, 8, Variant::Baseline, pf, "hw", cfg).unwrap();
    let asap = run_spmm(
        &tri,
        "t",
        "g",
        true,
        8,
        Variant::Asap { distance: D },
        pf,
        "hw",
        cfg,
    )
    .unwrap();
    let aj = run_spmm(
        &tri,
        "t",
        "g",
        true,
        8,
        Variant::AinsworthJones { distance: D },
        pf,
        "hw",
        cfg,
    )
    .unwrap();
    assert_eq!(aj.sw_pf_issued, 0, "A&J cannot instrument SpMM");
    assert!(asap.sw_pf_issued > 0);
    assert!(
        asap.throughput / base.throughput > 1.2,
        "outer-loop prefetching must pay off: {:.2}",
        asap.throughput / base.throughput
    );
    // A&J == baseline modulo measurement identity (same binary).
    assert!((aj.throughput / base.throughput - 1.0).abs() < 0.02);
}

/// Section 5.1 / Figure 7 insight: disabling the inaccurate prefetchers
/// (L1 NLP, L2 AMP) helps ASaP; the baseline is comparatively
/// insensitive.
#[test]
fn optimized_hw_config_amplifies_asap() {
    let tri = gen::erdos_renyi(64_000, 8, 13);
    let asap_default = spmv(
        &tri,
        Variant::Asap { distance: D },
        PrefetcherConfig::hw_default(),
    );
    let asap_opt = spmv(
        &tri,
        Variant::Asap { distance: D },
        PrefetcherConfig::optimized_spmv(),
    );
    let gain = asap_opt.throughput / asap_default.throughput;
    assert!(gain > 1.1, "optimized config must amplify ASaP: {gain:.3}");

    let base_default = spmv(&tri, Variant::Baseline, PrefetcherConfig::hw_default());
    let base_opt = spmv(&tri, Variant::Baseline, PrefetcherConfig::optimized_spmv());
    let base_gain = (base_opt.throughput / base_default.throughput - 1.0).abs();
    assert!(
        base_gain < gain - 1.0,
        "the baseline must be less sensitive than ASaP: {base_gain:.3}"
    );
}

/// Section 3.2.1: omitting Step 1 (the crd-stream prefetch) degrades
/// performance — the IPP's two stream slots cannot cover SpMV's streams.
#[test]
fn step1_ablation_degrades_asap() {
    use asap::sim::Machine;
    use asap::sparsifier::KernelSpec;
    use asap::tensor::{Format, SparseTensor, ValueKind};
    use asap_core::{compile_with_width, AsapConfig, PrefetchStrategy};
    let tri = gen::erdos_renyi(64_000, 8, 17);
    let sparse = SparseTensor::from_coo(&tri.to_coo_f64(), Format::csr());
    let spec = KernelSpec::spmv(ValueKind::F64);
    let x = vec![1.0; 64_000];
    let mut cycles = Vec::new();
    for step1 in [true, false] {
        let cfgp = AsapConfig {
            distance: D,
            locality: 2,
            prefetch_crd_stream: step1,
        };
        let ck = compile_with_width(
            &spec,
            &Format::csr(),
            sparse.index_width(),
            &PrefetchStrategy::Asap(cfgp),
        )
        .unwrap();
        let mut m = Machine::new(tiny_machine(), PrefetcherConfig::optimized_spmv());
        let _ = asap::core::run_spmv_f64_with(&ck, &sparse, &x, &mut m);
        cycles.push(m.counters().cycles);
    }
    assert!(
        cycles[1] > cycles[0],
        "dropping Step 1 must cost cycles: with={} without={}",
        cycles[0],
        cycles[1]
    );
}

/// Section 5: the EWS metric behaves as Eeckhout argues — dominated by
/// the slowest matrices, unlike a geometric mean.
#[test]
fn ews_metric_properties() {
    let base = [10.0, 10.0, 10.0, 1.0];
    let better_on_fast = [20.0, 20.0, 20.0, 1.0];
    let better_on_slow = [10.0, 10.0, 10.0, 2.0];
    let s_fast = ews_speedup(&better_on_fast, &base);
    let s_slow = ews_speedup(&better_on_slow, &base);
    assert!(
        s_slow > s_fast,
        "helping the slow matrix matters more: {s_slow:.2} vs {s_fast:.2}"
    );
}

/// Section 3.2: fault avoidance. A prefetch distance far beyond every
/// segment (and beyond the whole buffer tail) must never fault, for any
/// format — the bounded Step-2 load clamps to the buffer size.
#[test]
fn huge_distance_never_faults() {
    use asap::tensor::Format;
    let tri = gen::road_network(2_000, 3);
    let mut t = tri;
    for v in &mut t.vals {
        *v = 1.0;
    }
    t.binary = false;
    for fmt in [Format::csr(), Format::coo(), Format::dcsr()] {
        use asap::sparsifier::KernelSpec;
        use asap::tensor::{SparseTensor, ValueKind};
        use asap_core::{compile_with_width, PrefetchStrategy};
        let sparse = SparseTensor::from_coo(&t.to_coo_f64(), fmt.clone());
        let spec = KernelSpec::spmv(ValueKind::F64);
        for strat in [
            PrefetchStrategy::asap(1_000_000),
            PrefetchStrategy::aj(1_000_000),
        ] {
            let ck = compile_with_width(&spec, &fmt, sparse.index_width(), &strat).unwrap();
            let x = vec![1.0; 2_000];
            // Must neither fault nor report an error.
            let y = asap::core::run_spmv_f64(&ck, &sparse, &x).unwrap();
            let want = t.dense_spmv(&x);
            for (g, w) in y.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()));
            }
        }
    }
}
