//! Chaos soak for the `asap-serve` daemon (DESIGN.md §12).
//!
//! Two batteries, both over real TCP:
//!
//! - **Hostile protocol** — every byte stream from
//!   `hostile_protocol_cases` (malformed request lines, header bombs,
//!   lying `Content-Length`, binary garbage) must provoke exactly the
//!   documented typed rejection or a clean close. Never a hang, never
//!   a panic.
//! - **Fault soak** — many fixed seeds, each a fresh deterministic
//!   chaos proxy (delays, drips, splits, truncates, corruptions,
//!   RST aborts) between a `ResilientClient` and one shared server.
//!   Some seeds also kill a worker thread outright via
//!   `/debug/kill_worker`. At the end the server must report healthy
//!   with every killed worker resurrected, every crash journaled, and
//!   every request accounted as a success, a typed rejection, or an
//!   exhausted retry — a 500 anywhere means a parser panic and fails
//!   the soak.
//!
//! Seed count comes from `ASAP_CHAOS_SEEDS` (default 32; CI smoke uses
//! a smaller value). Everything is deterministic per seed, so a failure
//! reproduces by exporting the same count.

use asap_fuzz::chaos_proxy::{hostile_protocol_cases, ChaosConfig, ChaosProxy, HostileExpect};
use asap_serve::{
    get, post, ClientError, ResilientClient, RetryPolicy, ServeConfig, Server, MAX_HEADERS,
    MAX_HEAD_BYTES, MAX_REQUEST_LINE,
};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);
const RUN_BODY: &str =
    r#"{"kernel":"spmv","matrix":"gen:er:1024:4","strategy":"asap","distance":47}"#;

fn field(body: &str, key: &str) -> Option<String> {
    let v = asap_obs::parse_json(body).ok()?;
    let f = v.get(key)?;
    f.as_str()
        .map(str::to_string)
        .or_else(|| f.as_u64().map(|n| n.to_string()))
        .or_else(|| f.as_bool().map(|b| b.to_string()))
}

fn u64_field(body: &str, key: &str) -> u64 {
    field(body, key)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("missing numeric field {key} in {body}"))
}

/// Write raw bytes, half-close, and collect whatever comes back.
/// Returns the parsed status code, or `None` for a (clean or reset)
/// close with no complete status line. Panics on a hang: a server that
/// neither answers nor closes within the read timeout has failed the
/// battery.
fn throw(addr: SocketAddr, bytes: &[u8], label: &str) -> Option<u16> {
    let mut s = TcpStream::connect(addr).expect("connect to server");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    // The server may slam the door mid-write (header bombs); that is a
    // rejection, not a test failure.
    let _ = s.write_all(bytes);
    let _ = s.shutdown(Shutdown::Write);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                panic!("server hung on hostile case {label:?}")
            }
            Err(_) => break, // RST: an abrupt close, still a close
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
}

#[test]
fn hostile_battery_gets_typed_rejections_and_never_hangs() {
    let server = Server::start(ServeConfig {
        io_timeout_ms: 400,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    for seed in [1u64, 2, 3] {
        for case in hostile_protocol_cases(seed, MAX_REQUEST_LINE, MAX_HEADERS, MAX_HEAD_BYTES) {
            let got = throw(addr, &case.bytes, &case.label);
            match case.expect {
                HostileExpect::Status(code) => assert_eq!(
                    got,
                    Some(code),
                    "case {:?} (seed {seed}) wanted {code}",
                    case.label
                ),
                HostileExpect::Any4xx => {
                    let status =
                        got.unwrap_or_else(|| panic!("case {:?} got no response", case.label));
                    assert!(
                        (400..500).contains(&status),
                        "case {:?} (seed {seed}) wanted a 4xx, got {status}",
                        case.label
                    );
                }
                // `throw` already panicked if the server hung.
                HostileExpect::ResponseOrClose => {}
            }
        }
    }

    // The battery must leave no mark: still healthy, still serving.
    let hz = get(addr, "/healthz", TIMEOUT).expect("healthz transport");
    assert_eq!(hz.status, 200, "body: {}", hz.body);
    assert_eq!(field(&hz.body, "status").as_deref(), Some("ok"));
    let reply = post(addr, "/v1/run", RUN_BODY, TIMEOUT).expect("clean request transport");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    server.join();
}

#[test]
fn chaos_soak_ends_healthy_with_consistent_metrics() {
    let seed_count: u64 = std::env::var("ASAP_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
        .max(1);

    // CI points ASAP_CHAOS_JOURNAL at a workspace path so the journal
    // survives a failed run and can be uploaded for post-mortem; the
    // file is kept when the variable is set.
    let keep_journal = std::env::var_os("ASAP_CHAOS_JOURNAL").is_some();
    let journal = std::env::var_os("ASAP_CHAOS_JOURNAL")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("asap-chaos-journal-{}.jsonl", std::process::id()))
        });
    let _ = std::fs::remove_file(&journal);
    let server = Server::start(ServeConfig {
        workers: 3,
        enable_fault_endpoints: true,
        crash_journal: Some(journal.clone()),
        // Short read deadline: a corrupted Content-Length must not pin
        // a worker for the default 10 s.
        io_timeout_ms: 400,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // Warm the matrix/kernel caches and record the reference answer
    // before any fault is in play.
    let warm = post(addr, "/v1/run", RUN_BODY, TIMEOUT).expect("warmup transport");
    assert_eq!(warm.status, 200, "body: {}", warm.body);
    let reference = field(&warm.body, "checksum").expect("checksum field");

    let (mut sent, mut ok, mut rejected, mut exhausted) = (0u64, 0u64, 0u64, 0u64);
    let mut kills = 0u64;
    let mut proxied = 0u64;
    for seed in 1..=seed_count {
        let mut proxy = ChaosProxy::start(addr, seed, ChaosConfig::soak()).expect("proxy starts");
        let client = ResilientClient::new(
            RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(50),
                seed,
            },
            Duration::from_secs(3),
        );
        for _ in 0..2 {
            sent += 1;
            match client.post(proxy.addr(), "/v1/run", RUN_BODY) {
                Ok(reply) => match reply.status {
                    200 => ok += 1,
                    // A caught request panic answers 500; chaos input
                    // must never reach one.
                    500 => panic!("server panicked under seed {seed}: {}", reply.body),
                    400..=599 => rejected += 1,
                    s => panic!("unexpected status {s} under seed {seed}"),
                },
                Err(ClientError::Exhausted { .. }) | Err(ClientError::CircuitOpen { .. }) => {
                    exhausted += 1
                }
            }
        }
        let stats = proxy.stop();
        assert!(stats.connections > 0, "seed {seed} proxied nothing");
        proxied += stats.connections;

        // Every eighth seed also murders a worker thread, straight at
        // the server so the proxy cannot eat the kill request.
        if seed % 8 == 3 {
            let r = post(addr, "/debug/kill_worker", "{}", TIMEOUT).expect("kill transport");
            assert_eq!(r.status, 200, "body: {}", r.body);
            kills += 1;
        }
    }

    // Accounting: every request ended as success, typed rejection, or
    // exhausted retries — nothing vanished, and chaos did not eat the
    // majority of the traffic.
    assert_eq!(ok + rejected + exhausted, sent);
    assert!(ok > sent / 2, "goodput collapsed: {ok}/{sent} ok");
    assert!(
        proxied >= sent,
        "proxy records fewer connections than requests"
    );

    // Supervisor: every killed worker resurrected. Restart backoff can
    // delay the last respawn, so poll.
    let deadline = Instant::now() + Duration::from_secs(15);
    let final_hz = loop {
        let hz = get(addr, "/healthz", TIMEOUT).expect("healthz transport");
        assert_eq!(hz.status, 200, "body: {}", hz.body);
        if u64_field(&hz.body, "workers_alive") == 3 {
            break hz;
        }
        assert!(
            Instant::now() < deadline,
            "workers never came back: {}",
            hz.body
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(field(&final_hz.body, "status").as_deref(), Some("ok"));
    assert!(u64_field(&final_hz.body, "worker_restarts") >= kills);
    let journaled = u64_field(&final_hz.body, "crashes_journaled");
    assert!(journaled >= kills, "journaled {journaled} < kills {kills}");

    // The journal file agrees with the counter and every line parses.
    let text = std::fs::read_to_string(&journal).expect("journal file exists");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len() as u64, journaled, "journal lines vs counter");
    for line in &lines {
        let v = asap_obs::parse_json(line).expect("journal line parses as JSON");
        for key in ["ts_ms", "worker", "kind", "digest", "fingerprint"] {
            assert!(v.get(key).is_some(), "journal line missing {key}: {line}");
        }
    }

    // Post-soak the server still gives the pre-soak answer and drains
    // cleanly.
    let after = post(addr, "/v1/run", RUN_BODY, TIMEOUT).expect("post-soak transport");
    assert_eq!(after.status, 200, "body: {}", after.body);
    assert_eq!(
        field(&after.body, "checksum").as_deref(),
        Some(reference.as_str())
    );
    server.join();
    if !keep_journal {
        let _ = std::fs::remove_file(&journal);
    }
}
