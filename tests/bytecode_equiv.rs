//! Differential engine-equivalence suite (ISSUE acceptance gate): the
//! bytecode VM must be observationally identical to the tree-walking
//! interpreter. Every case runs the same compiled kernel under both
//! engines with a full [`asap_ir::TraceModel`] each and requires, via
//! [`asap_fuzz::engines_agree`]:
//!
//! - bit-identical output vectors,
//! - an identical ordered `(op, addr, bytes)` demand/prefetch event
//!   stream (traces compare `Eq`, so addresses and op ids must match
//!   exactly — not just event counts),
//! - equal retired-instruction totals,
//! - and, whenever the kernel carries a tier-2 native specialization,
//!   a third leg: the native engine must reproduce the same bits and
//!   the same typed traps (it emits no memory events by design — see
//!   `asap_ir::tier2` — so it is exempt from the stream comparison).
//!
//! Two corpora: the 64 fixed-seed fuzz cases shared with the strategy
//! oracle in `tests/differential.rs` (same seeds, same derivation — a
//! failure here reproduces there), and every matrix of the synthetic
//! collection the paper figures sweep.

use asap::ir::{Budget, Resource};
use asap::tensor::{Format, IndexWidth, SparseTensor, ValueKind};
use asap_bench::PAPER_DISTANCE;
use asap_core::{compile_with_width, PrefetchStrategy};
use asap_fuzz::{engines_agree, engines_agree_budgeted, random_triplets, EngineAgreement, Rng64};
use asap_matrices::{synthetic_collection, SizeClass};
use asap_sparsifier::KernelSpec;

/// Deterministic dense operand (distinct from the fuzz crate's, so the
/// suite does not silently share a code path with the oracle it checks).
fn dense_x(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 + (i % 13) as f64 * 0.25).collect()
}

/// Run one (matrix, format, width, distance) case under all three
/// prefetch strategies and both engines (plus the tier-2 leg whenever a
/// strategy's kernel specialized); returns `(verified strategy runs,
/// tier-2 legs run)`. Panics with the case label on any divergence.
fn case_agrees(label: &str, sparse: &SparseTensor, x: &[f64], distance: usize) -> (usize, usize) {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let mut verified = 0;
    let mut tier2_runs = 0;
    for strat in [
        PrefetchStrategy::none(),
        PrefetchStrategy::asap(distance),
        PrefetchStrategy::aj(distance),
    ] {
        let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), &strat)
            .unwrap_or_else(|e| panic!("{label}/{}: compile failed: {e}", strat.label()));
        match engines_agree(&ck, sparse, x)
            .unwrap_or_else(|e| panic!("{label}/{}: engines diverge: {e}", strat.label()))
        {
            EngineAgreement::Agreed {
                instructions,
                tier2,
                ..
            } => {
                assert!(
                    instructions > 0,
                    "{label}/{}: no instructions retired",
                    strat.label()
                );
                assert_eq!(
                    tier2,
                    ck.tier2.is_some(),
                    "{label}/{}: the tier-2 leg runs iff the kernel specialized",
                    strat.label()
                );
                verified += 1;
                tier2_runs += usize::from(tier2);
            }
            EngineAgreement::Trapped(e) => {
                panic!("{label}/{}: valid input trapped: {e}", strat.label())
            }
        }
    }
    (verified, tier2_runs)
}

/// 64 fixed-seed random cases — the same seed derivation as the strategy
/// oracle in `tests/differential.rs`, so a failure in either suite is
/// reproducible in the other.
#[test]
fn sixty_four_random_cases_agree_across_engines() {
    let formats = [Format::csr(), Format::coo(), Format::dcsr()];
    let widths = [IndexWidth::U32, IndexWidth::U64];
    let mut verified = 0usize;
    let mut tier2_legs = 0usize;
    for seed in 0..64u64 {
        let mut rng = Rng64::seed_from_u64(0xd1ff * (seed + 1));
        let tri = random_triplets(&mut rng, 40, 200);
        let fmt = &formats[(seed % 3) as usize];
        let width = widths[(seed % 2) as usize];
        let distance = 1 + (seed as usize * 7) % 90;
        let coo = tri
            .try_to_coo_f64()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut sparse = SparseTensor::try_from_coo(&coo, fmt.clone())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        sparse.set_index_width(width);
        let x = dense_x(tri.ncols);
        let (v, t2) = case_agrees(&format!("seed {seed}"), &sparse, &x, distance);
        verified += v;
        tier2_legs += t2;
    }
    // 64 cases × 3 strategies, every one bit-identical across engines.
    assert_eq!(verified, 64 * 3);
    // Every CSR case's ASaP kernel specializes to tier-2, making the
    // comparison five-way for those runs: seeds 0, 3, ..., 63 → 22 legs.
    assert_eq!(
        tier2_legs, 22,
        "expected every CSR/asap case to go five-way"
    );
}

/// 36 fixed-seed budgeted cases (acceptance gate: ≥32): a fuel budget of
/// 1000 — far below the total loop-entry count of these matrices — must
/// trap BOTH engines at observationally equivalent points. The engine
/// comparison requires identical memory-event prefixes and the same
/// typed error display; the structured violation must name `Fuel` with
/// `spent == limit == 1000`. Formats, index widths, and all three
/// prefetch strategies rotate across seeds (format by `seed % 3`,
/// strategy by `(seed / 3) % 3`, so every combination occurs — in
/// particular CSR×ASaP, whose kernel specializes to tier-2 and must
/// trap with the identical error display as both interpreters).
#[test]
fn budgeted_traps_are_equivalent_across_engines() {
    const FUEL: u64 = 1000;
    let formats = [Format::csr(), Format::coo(), Format::dcsr()];
    let widths = [IndexWidth::U32, IndexWidth::U64];
    let spec = KernelSpec::spmv(ValueKind::F64);
    let mut verified = 0usize;
    let mut tier2_traps = 0usize;
    for seed in 0..36u64 {
        let mut rng = Rng64::seed_from_u64(0xbd6e7 * (seed + 1));
        let n = 1200 + (seed as usize * 37) % 400;
        // Full diagonal guarantees nnz >= n >> FUEL loop entries for
        // every format; random extras vary the shape per seed.
        let mut tri = asap_matrices::Triplets::new(n, n);
        for r in 0..n {
            tri.push(r, r, 1.0 + (r % 9) as f64);
        }
        for _ in 0..n / 2 {
            tri.push(rng.usize_below(n), rng.usize_below(n), 0.5);
        }
        let fmt = &formats[(seed % 3) as usize];
        let width = widths[(seed % 2) as usize];
        let distance = 1 + (seed as usize * 11) % 90;
        let strat = match (seed / 3) % 3 {
            0 => PrefetchStrategy::none(),
            1 => PrefetchStrategy::asap(distance),
            _ => PrefetchStrategy::aj(distance),
        };
        let coo = tri
            .try_to_coo_f64()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mut sparse = SparseTensor::try_from_coo(&coo, fmt.clone())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        sparse.set_index_width(width);
        let x = dense_x(tri.ncols);
        let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), &strat)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
        let budget = Budget::unlimited().with_fuel(FUEL);
        match engines_agree_budgeted(&ck, &sparse, &x, &budget)
            .unwrap_or_else(|e| panic!("seed {seed}: engines diverge under budget: {e}"))
        {
            EngineAgreement::Trapped(msg) => {
                assert!(msg.contains("fuel"), "seed {seed}: unexpected trap: {msg}")
            }
            EngineAgreement::Agreed { .. } => {
                panic!("seed {seed}: fuel {FUEL} on a {n}x{n} matrix must trap")
            }
        }
        // The same run through the public entry point carries the
        // structured violation.
        let err = asap_core::run_spmv_f64_budgeted(
            &ck,
            &sparse,
            &x,
            &mut asap::ir::NullModel,
            asap_core::ExecEngine::Auto,
            &budget,
        )
        .expect_err("budgeted run must trap");
        let v = err
            .budget_violation()
            .unwrap_or_else(|| panic!("seed {seed}: no structured violation in {err}"));
        assert_eq!(v.resource, Resource::Fuel, "seed {seed}");
        assert_eq!((v.spent, v.limit), (FUEL, FUEL), "seed {seed}");
        // When the kernel specialized, `engines_agree_budgeted` above
        // already required the tier-2 trap display to match both
        // interpreters; additionally pin the structured violation.
        if let Some(plan) = ck.tier2.as_ref() {
            let err = asap_core::run_spmv_f64_budgeted(
                &ck,
                &sparse,
                &x,
                &mut asap::ir::NullModel,
                asap_core::ExecEngine::Tier2,
                &budget,
            )
            .expect_err("budgeted tier-2 run must trap");
            let v = err
                .budget_violation()
                .unwrap_or_else(|| panic!("seed {seed}: tier-2 trap not structured: {err}"));
            assert_eq!(v.resource, Resource::Fuel, "seed {seed} (tier-2)");
            assert_eq!((v.spent, v.limit), (FUEL, FUEL), "seed {seed} (tier-2)");
            assert!(!plan.key().is_empty());
            tier2_traps += 1;
        }
        verified += 1;
    }
    assert!(verified >= 32, "only {verified} budgeted cases verified");
    // CSR×ASaP occurs at seeds ≡ 0 (mod 3) with (seed/3) ≡ 1 (mod 3):
    // seeds 3, 12, 21, 30 — four tier-2 governed traps.
    assert_eq!(tier2_traps, 4, "expected the CSR/asap seeds to go tier-2");
}

/// Kernel shapes the tier-2 matcher does not recognize — baseline CSR
/// (no `SpmvLoop` superinstruction) and ASaP COO (a different loop
/// structure) — must compile with `tier2: None`, execute correctly via
/// the VM on `Auto` (silent, correct fallback), and reject an explicit
/// tier-2 request with a typed binding error rather than guessing.
#[test]
fn non_matching_shapes_fall_back_to_the_vm() {
    let spec = KernelSpec::spmv(ValueKind::F64);
    let mut rng = Rng64::seed_from_u64(0xfa11);
    let tri = random_triplets(&mut rng, 24, 120);
    let coo = tri.try_to_coo_f64().unwrap();
    let x = dense_x(tri.ncols);
    for (label, fmt, strat) in [
        ("csr/baseline", Format::csr(), PrefetchStrategy::none()),
        ("coo/asap", Format::coo(), PrefetchStrategy::asap(9)),
    ] {
        let sparse = SparseTensor::try_from_coo(&coo, fmt).unwrap();
        let ck = compile_with_width(&spec, sparse.format(), sparse.index_width(), &strat)
            .unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
        assert!(ck.tier2.is_none(), "{label}: shape must not specialize");
        match engines_agree(&ck, &sparse, &x)
            .unwrap_or_else(|e| panic!("{label}: engines diverge: {e}"))
        {
            EngineAgreement::Agreed { tier2, .. } => {
                assert!(!tier2, "{label}: no tier-2 leg without a plan")
            }
            EngineAgreement::Trapped(e) => panic!("{label}: valid input trapped: {e}"),
        }
        // Auto executes without error — the VM fallback is silent.
        asap_core::run_spmv_f64_budgeted(
            &ck,
            &sparse,
            &x,
            &mut asap::ir::NullModel,
            asap_core::ExecEngine::Auto,
            &Budget::unlimited(),
        )
        .unwrap_or_else(|e| panic!("{label}: auto fallback failed: {e}"));
        // An explicit tier-2 request on an unspecialized kernel is a
        // typed binding error, never a silent downgrade.
        let err = asap_core::run_spmv_f64_budgeted(
            &ck,
            &sparse,
            &x,
            &mut asap::ir::NullModel,
            asap_core::ExecEngine::Tier2,
            &Budget::unlimited(),
        )
        .expect_err("explicit tier-2 without a specialization must error");
        assert_eq!(err.kind(), "binding", "{label}: {err}");
    }
}

/// Every matrix in the synthetic collection the paper figures sweep, in
/// CSR at the paper's prefetch distance — the exact configuration
/// `perfstat` times, so the speedup measured there is over a verified
/// equivalence.
#[test]
fn synthetic_collection_agrees_across_engines() {
    let mut verified = 0usize;
    for m in synthetic_collection(SizeClass::Tiny) {
        let tri = m.materialize();
        let coo = tri
            .try_to_coo_f64()
            .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let sparse = SparseTensor::try_from_coo(&coo, Format::csr())
            .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        let x = dense_x(tri.ncols);
        let (v, t2) = case_agrees(&m.name, &sparse, &x, PAPER_DISTANCE);
        assert_eq!(
            t2, 1,
            "{}: exactly the ASaP CSR kernel specializes per case",
            m.name
        );
        verified += v;
    }
    assert!(verified >= 3, "collection must not be empty");
}
