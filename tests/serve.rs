//! End-to-end contracts for the `asap-serve` daemon (DESIGN.md §11).
//!
//! Every test starts a real server on an ephemeral loopback port and
//! talks to it over actual TCP — no mocked transport — because the
//! behaviors under test (admission, drain, disconnect reaping) live in
//! the transport layer:
//!
//! - **Fidelity** — a served result is bit-identical (via the FNV-1a
//!   output checksum) to a direct `asap_core::serve_request` call on
//!   the same matrix; concurrent clients all observe that one answer.
//! - **Coalescing** — N cold concurrent requests for the same kernel
//!   trigger exactly one compile; followers report `cache_hit`.
//! - **Deadlines** — a 1 ms deadline on a large matrix traps in the
//!   budget meter and surfaces as 504, not a hung connection.
//! - **Admission** — with one slow worker and a one-slot queue, the
//!   third concurrent request is bounced 429 + Retry-After immediately.
//! - **Input hygiene** — malformed bodies are 400s with typed error
//!   JSON; unknown routes 404; wrong methods 405.
//! - **Isolation** — a request that panics burns its own connection
//!   (500) and nothing else; the next request succeeds.
//! - **Drain** — shutdown answers everything already queued, then the
//!   listener goes away.
//!
//! The compile cache and metrics registry are process-global, so tests
//! that assert on cache-miss counts use strategy distances unique to
//! this binary (no other test compiles them).

use asap::core::{serve_request, ExecEngine, PrefetchStrategy, ServiceKernel};
use asap::ir::Budget;
use asap::matrices::SizeClass;
use asap_serve::{exchange, get, post, MatrixCatalog, ServeConfig, Server};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("server starts on ephemeral port")
}

fn field(body: &str, key: &str) -> Option<String> {
    let v = asap_obs::parse_json(body).ok()?;
    let f = v.get(key)?;
    f.as_str()
        .map(str::to_string)
        .or_else(|| f.as_u64().map(|n| n.to_string()))
        .or_else(|| f.as_bool().map(|b| b.to_string()))
}

#[test]
fn served_result_is_bit_identical_to_direct_call() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let reply = post(
        addr,
        "/v1/run",
        r#"{"kernel":"spmv","matrix":"gen:er:1024:4","strategy":"asap","distance":45}"#,
        TIMEOUT,
    )
    .expect("transport ok");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let served = field(&reply.body, "checksum").expect("checksum field");

    // The reference: same matrix through the same catalog, executed by
    // a direct library call with no server in the path.
    let catalog = MatrixCatalog::new(SizeClass::Tiny);
    let sparse = catalog.resolve("gen:er:1024:4").expect("resolves");
    let direct = serve_request(
        ServiceKernel::Spmv,
        &sparse,
        &PrefetchStrategy::asap(45),
        ExecEngine::Auto,
        &Budget::unlimited(),
    )
    .expect("direct call succeeds");
    assert_eq!(served, format!("{:016x}", direct.checksum));

    server.join();
}

#[test]
fn tier2_engine_is_served_bit_identically_and_unmatched_shapes_400() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    // The same ASaP CSR kernel through every engine the wire accepts:
    // one answer, and the explicit tier-2 request actually runs native.
    let mut checksums = Vec::new();
    for engine in ["auto", "tier2", "bytecode", "tree-walk"] {
        let body = format!(
            r#"{{"kernel":"spmv","matrix":"gen:er:1024:4","strategy":"asap","engine":"{engine}"}}"#
        );
        let reply = post(addr, "/v1/run", &body, TIMEOUT).expect("transport ok");
        assert_eq!(reply.status, 200, "engine {engine}: {}", reply.body);
        let used = field(&reply.body, "engine").expect("engine field");
        match engine {
            // The service upgrades `auto` to tier-2 when the kernel
            // specialized (DESIGN.md §13.3).
            "auto" | "tier2" => assert_eq!(used, "tier2", "body: {}", reply.body),
            other => assert_eq!(used, other, "body: {}", reply.body),
        }
        checksums.push(field(&reply.body, "checksum").expect("checksum field"));
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "engines disagree: {checksums:?}"
    );

    // A baseline (prefetch-free) kernel never specializes: demanding
    // tier-2 for it is a typed 400, not a silent fallback.
    let reply = post(
        addr,
        "/v1/run",
        r#"{"kernel":"spmv","matrix":"gen:er:1024:4","strategy":"baseline","engine":"tier2"}"#,
        TIMEOUT,
    )
    .expect("transport ok");
    assert_eq!(reply.status, 400, "body: {}", reply.body);
    assert_eq!(field(&reply.body, "kind").as_deref(), Some("binding"));

    server.join();
}

#[test]
fn concurrent_clients_agree_on_one_answer() {
    let server = start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body =
        r#"{"kernel":"spmm","matrix":"gen:banded:512:8","cols":4,"strategy":"aj","distance":12}"#;

    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let reply = post(addr, "/v1/run", body, TIMEOUT).expect("transport ok");
                assert_eq!(reply.status, 200, "body: {}", reply.body);
                field(&reply.body, "checksum").expect("checksum field")
            })
        })
        .collect();
    let checksums: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "disagreeing checksums: {checksums:?}"
    );

    server.join();
}

#[test]
fn concurrent_cold_compiles_coalesce_into_one_miss() {
    let server = start(ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // Distance 7877 is unique to this test, so the first compile of
    // this (kernel, strategy) key in the whole process happens here —
    // under concurrency, which is exactly the single-flight case.
    let body = r#"{"kernel":"spmv","matrix":"gen:er:256:4","strategy":"asap","distance":7877}"#;

    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let reply = post(addr, "/v1/run", body, TIMEOUT).expect("transport ok");
                assert_eq!(reply.status, 200, "body: {}", reply.body);
                field(&reply.body, "cache_hit").expect("cache_hit field")
            })
        })
        .collect();
    let misses = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .filter(|hit| hit == "false")
        .count();
    assert_eq!(
        misses, 1,
        "expected exactly one real compile among coalesced requests"
    );

    server.join();
}

#[test]
fn expired_deadline_returns_504() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    // rmat:16:8 is ~half a million nnz: execution comfortably outlasts
    // a 1 ms deadline, so the budget meter trips mid-kernel.
    let reply = post(
        addr,
        "/v1/run",
        r#"{"kernel":"spmv","matrix":"gen:rmat:16:8","deadline_ms":1}"#,
        TIMEOUT,
    )
    .expect("transport ok");
    assert_eq!(reply.status, 504, "body: {}", reply.body);
    assert_eq!(field(&reply.body, "kind").as_deref(), Some("budget"));

    server.join();
}

#[test]
fn overload_is_bounced_with_429_not_queued_forever() {
    // One worker that sits on each connection for 400 ms, and a queue
    // of one: request A occupies the worker, B fills the queue, and C —
    // arriving while both hold their slots — must bounce immediately.
    let server = start(ServeConfig {
        workers: 1,
        queue_bound: 1,
        worker_delay_ms: 400,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = r#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#;

    let a = std::thread::spawn(move || post(addr, "/v1/run", body, TIMEOUT));
    std::thread::sleep(Duration::from_millis(100));
    let b = std::thread::spawn(move || post(addr, "/v1/run", body, TIMEOUT));
    std::thread::sleep(Duration::from_millis(100));

    let c = post(addr, "/v1/run", body, TIMEOUT).expect("transport ok");
    assert_eq!(c.status, 429, "body: {}", c.body);
    assert_eq!(c.header("retry-after"), Some("1"));

    // The admitted requests still complete normally behind the slow
    // worker — overload sheds new load, it does not fail accepted work.
    assert_eq!(a.join().unwrap().expect("transport ok").status, 200);
    assert_eq!(b.join().unwrap().expect("transport ok").status, 200);

    server.join();
}

#[test]
fn malformed_requests_get_typed_400s() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    let cases: &[&str] = &[
        "{not json",
        r#"{"kernel":"spmv"}"#,                                   // no matrix
        r#"{"kernel":"fft","matrix":"gen:er:256:4"}"#,            // unknown kernel
        r#"{"kernel":"spmv","matrix":"gen:er:256:4","bogus":1}"#, // unknown field
        r#"{"kernel":"spmv","matrix":"no-such-matrix"}"#,         // unresolvable
        r#"{"kernel":"spmv","matrix":"gen:er:256:4","cols":4}"#,  // cols on spmv
        r#"{"kernel":"spmv","matrix":"gen:er:1","mtx":"%%MatrixMarket"}"#, // both sources
    ];
    for body in cases {
        let reply = post(addr, "/v1/run", body, TIMEOUT).expect("transport ok");
        assert_eq!(reply.status, 400, "request {body:?} -> {}", reply.body);
        assert_eq!(
            field(&reply.body, "status").as_deref(),
            Some("bad_request"),
            "request {body:?} -> {}",
            reply.body
        );
    }

    assert_eq!(get(addr, "/no/such/route", TIMEOUT).unwrap().status, 404);
    assert_eq!(
        exchange(addr, "PUT", "/v1/run", "", TIMEOUT)
            .unwrap()
            .status,
        405
    );

    server.join();
}

#[test]
fn inline_matrix_market_body_is_served() {
    let server = start(ServeConfig::default());
    let addr = server.addr();
    let mtx = "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 1 2.0\n2 2 -1.5\n3 1 0.25\n3 3 4.0\n";
    let body = format!(
        r#"{{"kernel":"spmv","mtx":{:?},"strategy":"baseline"}}"#,
        mtx
    );
    let reply = post(addr, "/v1/run", &body, TIMEOUT).expect("transport ok");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert_eq!(field(&reply.body, "nnz").as_deref(), Some("4"));

    server.join();
}

#[test]
fn a_panicking_request_is_isolated() {
    let server = start(ServeConfig {
        enable_fault_endpoints: true,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let reply = post(addr, "/debug/panic", "", TIMEOUT).expect("transport ok");
    assert_eq!(reply.status, 500, "body: {}", reply.body);

    // The worker that caught the panic is still in rotation.
    let reply = post(
        addr,
        "/v1/run",
        r#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#,
        TIMEOUT,
    )
    .expect("transport ok");
    assert_eq!(reply.status, 200, "body: {}", reply.body);

    server.join();
}

#[test]
fn health_and_metrics_endpoints_respond() {
    let server = start(ServeConfig::default());
    let addr = server.addr();

    post(
        addr,
        "/v1/run",
        r#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#,
        TIMEOUT,
    )
    .expect("transport ok");

    let health = get(addr, "/healthz", TIMEOUT).expect("transport ok");
    assert_eq!(health.status, 200);
    assert_eq!(field(&health.body, "status").as_deref(), Some("ok"));

    let metrics = get(addr, "/metrics", TIMEOUT).expect("transport ok");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("serve.served"),
        "metrics text: {}",
        metrics.body
    );

    server.join();
}

#[test]
fn shutdown_drains_queued_work_then_stops_listening() {
    // A deliberately slow single worker so requests are still queued
    // when the drain begins.
    let server = start(ServeConfig {
        workers: 1,
        queue_bound: 8,
        worker_delay_ms: 200,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let body = r#"{"kernel":"spmv","matrix":"gen:er:256:4"}"#;

    let inflight: Vec<_> = (0..3)
        .map(|_| std::thread::spawn(move || post(addr, "/v1/run", body, TIMEOUT)))
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    let ack = post(addr, "/control/shutdown", "", TIMEOUT).expect("transport ok");
    assert_eq!(ack.status, 200, "body: {}", ack.body);

    // Everything admitted before the drain still gets a real answer.
    for h in inflight {
        let reply = h.join().unwrap().expect("transport ok");
        assert_eq!(reply.status, 200, "body: {}", reply.body);
    }
    server.run_until_drained();

    // The listener is gone: connecting now fails outright.
    let after = post(addr, "/v1/run", body, Duration::from_secs(2));
    assert!(
        after.is_err(),
        "server still answering after drain: {after:?}"
    );
}
